"""The function-merging pass: ranking → alignment → codegen → commit.

This is the top-level optimization shared by the baseline and F3M; the
*ranker* argument selects the paper's configurations:

* ``ExhaustiveRanker()`` — HyFM (state of the art).
* ``MinHashLSHRanker()`` — F3M static (k=200, r=2, b=100, t=0).
* ``MinHashLSHRanker(adaptive=True)`` — F3M adaptive (Section III-D).

The pass walks functions in module order, asks the ranker for the most
similar live candidate, aligns the pair block-wise, generates the merged
function and commits it when the size model finds it profitable.  Every
stage is timed per attempt so that the paper's breakdown figures can be
regenerated.

Every attempt is *transactional*: any failure — an expected codegen
rejection, a veto from the differential oracle, or an unexpected
exception from any stage (the §III-E class of generator bugs) — rolls
the module back to its pre-attempt state and, under the default
``on_error="skip"`` policy, the pass records a structured outcome and
continues with the next candidate.  ``on_error="raise"`` preserves the
exception for debugging, after the rollback has run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

from ..alignment.batch import BatchAlignmentEngine
from ..alignment.hyfm_blocks import BlockFingerprintMemo, align_functions
from ..analysis.size import module_size
from ..faults import FaultInjector, InjectedFault
from ..ir.module import Module
from ..ir.verifier import VerificationError, verify_function
from ..diagnostics import errors_only
from ..obs import trace
from ..oracle.differential import DifferentialOracle, OracleConfig
from ..search.pairing import Ranker
from ..staticcheck.lint import lint_commit, lint_merge
from ..staticcheck.validate import PROVED, REFUTED, validate_merge
from .errors import MergeError
from .merger import MergeOptions, MergeResult, merge_functions
from .profitability import ProfitabilityBound, ProfitabilityModel
from .report import AttemptRecord, MergeReport, Outcome
from .thunks import commit_merge
from .transaction import MergeTransaction

__all__ = ["PassConfig", "FunctionMergingPass"]


@dataclass(frozen=True)
class PassConfig:
    """Pass-wide options.

    ``threshold`` — similarity threshold t below which ranked pairs are
    rejected before alignment (Section III-D; HyFM effectively uses 0).
    ``alignment`` — ``"linear"`` (HyFM's fast pairwise strategy, the paper's
    configuration) or ``"nw"`` (SalSSA-quality Needleman–Wunsch).
    ``legacy_bugs`` — re-enable the HyFM codegen bugs of Section III-E.
    ``verify`` — run the IR verifier on every merged function (slower;
    always on in tests, optional in benchmarks).
    ``min_instructions`` — skip trivially small functions as candidates.
    ``remerge`` — merged functions re-enter the candidate pool, so whole
    families collapse into one function across successive merges (the
    paper's Fig. 1 workflow replaces the pair with the merged function in
    the module being optimized).
    ``static_check`` — gate every profitable merge with the static
    merge-safety linter (:func:`repro.staticcheck.lint.lint_merge`): an
    error-severity diagnostic vetoes the commit with a ``static_fail``
    outcome, exactly like the oracle but at zero execution cost.  The
    applied commit (thunks, call-site rewrites) is re-linted before the
    transaction is finalized.
    ``oracle`` — gate every profitable merge with the differential-execution
    oracle; divergence vetoes the commit with an ``oracle_fail`` outcome.
    ``validate`` — run the translation validator
    (:func:`repro.staticcheck.validate.validate_merge`) on every
    profitable merge.  ``"off"`` skips it; ``"observe"`` records the
    verdict and timing on the attempt without influencing the decision
    (the fuzz campaign's cross-check mode); ``"gate"`` enforces it —
    ``refuted`` vetoes the commit with a ``validate_fail`` outcome,
    ``proved`` skips the differential oracle entirely (the simulation
    relation already covers what the oracle would sample), and
    ``unknown`` escalates to the oracle when one is configured.
    ``on_error`` — ``"skip"`` (default) contains unexpected exceptions:
    the attempt is rolled back, recorded, and the pass continues.
    ``"raise"`` re-raises after the rollback (debugging).
    ``batch_alignment`` — align through the vectorized, memoized, cached
    :class:`~repro.alignment.batch.BatchAlignmentEngine` (decision-identical
    to the pure aligners); off falls back to the pure path with a block-
    fingerprint memo.
    ``prealign_bound`` — reject pairs whose pre-alignment profitability
    upper bound (:class:`~repro.merge.profitability.ProfitabilityBound`)
    proves they can never be profitable, skipping alignment and codegen
    with a ``rejected_bound`` outcome.  The bound is sound: it never
    rejects a pair the full pipeline would have merged.
    ``lsh_compact_ratio`` — auto-compaction threshold of the LSH index:
    compact when tombstones exceed this fraction of the live entries.
    The default 1.0 is the historical "tombstones outnumber live rows"
    trigger; long-lived daemon indexes use a lower ratio, ``None``
    disables auto-compaction.
    ``reconcile`` — consumed by the partitioned drivers (the pass itself
    ignores it): run the phase-2 optimistic cross-partition
    reconciliation (:func:`repro.merge.partitioned.optimistic_sweep`)
    after the partition-local sweeps, recovering merge pairs that span
    partition boundaries.
    """

    threshold: float = 0.0
    alignment: str = "linear"
    legacy_bugs: bool = False
    verify: bool = True
    min_instructions: int = 1
    remerge: bool = True
    static_check: bool = False
    validate: str = "off"
    oracle: bool = False
    on_error: str = "skip"
    batch_alignment: bool = True
    prealign_bound: bool = True
    lsh_compact_ratio: Optional[float] = 1.0
    reconcile: bool = False

    def __post_init__(self) -> None:
        if self.on_error not in ("skip", "raise"):
            raise ValueError(
                f"on_error must be 'skip' or 'raise', got {self.on_error!r}"
            )
        if self.validate not in ("off", "observe", "gate"):
            raise ValueError(
                f"validate must be 'off', 'observe' or 'gate', got {self.validate!r}"
            )
        if self.lsh_compact_ratio is not None and self.lsh_compact_ratio <= 0:
            raise ValueError(
                f"lsh_compact_ratio must be positive or None, got {self.lsh_compact_ratio!r}"
            )


@dataclass
class _AttemptContext:
    """Mutable attempt state shared with the exception handlers."""

    record: AttemptRecord
    stage: str = "rank"


class FunctionMergingPass:
    """Apply function merging over a whole module."""

    def __init__(
        self,
        ranker: Ranker,
        config: PassConfig = PassConfig(),
        faults: Optional[FaultInjector] = None,
        oracle: Optional[DifferentialOracle] = None,
        alignment_engine: Optional[BatchAlignmentEngine] = None,
        metrics=None,
        transaction_factory=None,
    ) -> None:
        self.ranker = ranker
        self.config = config
        # Every attempt runs inside a transaction this factory produces.
        # The optimistic-sweep replay passes a retaining factory whose
        # commit() keeps the snapshots, so reconciliation can later undo
        # an already-committed optimistic merge bit-identically.
        self.transaction_factory = transaction_factory or MergeTransaction
        # Optional obs.metrics.Registry: when attached, run() folds the
        # report's stage timings and outcome tallies into it.
        self.metrics = metrics
        self.profitability = ProfitabilityModel()
        self.faults = faults
        if faults is not None:
            # Let ranking-internal stages (fingerprint, lsh) hit the same
            # injector; their faults surface inside best_match() and are
            # contained by the per-attempt transaction like any other.
            ranker.faults = faults
        if config.lsh_compact_ratio != 1.0 and hasattr(ranker, "compact_ratio"):
            # Non-default compaction threshold flows onto the LSH ranker
            # before preprocess() builds its index.
            ranker.compact_ratio = config.lsh_compact_ratio
        if oracle is None and config.oracle:
            oracle = DifferentialOracle(OracleConfig())
        self.oracle = oracle
        # Passing an engine shares its alignment cache and block memos
        # across passes (remerge rounds, partition sweeps); otherwise each
        # pass owns one when batch alignment is on.
        if alignment_engine is None and config.batch_alignment:
            alignment_engine = BatchAlignmentEngine(strategy=config.alignment)
        self.engine = alignment_engine
        # The bound shares the engine's interner so both see one
        # mergeability-code space (and one set of memoized encodings).
        self.bound = ProfitabilityBound(
            self.profitability,
            interner=alignment_engine.interner if alignment_engine else None,
        )
        self._fp_memo: Optional[BlockFingerprintMemo] = (
            BlockFingerprintMemo() if alignment_engine is None else None
        )

    # -- driver ---------------------------------------------------------------------
    def run(self, module: Module, functions=None) -> MergeReport:
        """Merge over *module*; *functions* optionally restricts the
        candidate population (used by profile-guided merging)."""
        report = MergeReport(strategy=self.ranker.name)
        report.size_before = module_size(module)
        start = time.perf_counter()

        population = functions if functions is not None else module.defined_functions()
        functions = [
            f
            for f in population
            if f.num_instructions >= self.config.min_instructions
        ]
        report.num_functions = len(functions)

        t0 = time.perf_counter()
        self.ranker.preprocess(functions)
        report.preprocess_time = time.perf_counter() - t0

        consumed = set()
        # The ranker's threshold (adaptive variant) overrides the static one.
        threshold = max(self.config.threshold, getattr(self.ranker, "threshold", 0.0))

        worklist = list(functions)
        index = 0
        while index < len(worklist):
            func = worklist[index]
            index += 1
            if id(func) in consumed:
                continue
            attempt, merged = self._attempt(module, func, consumed, threshold)
            report.attempts.append(attempt)
            if attempt.success:
                report.merges += 1
                if self.config.remerge and merged is not None:
                    self.ranker.insert(merged)
                    worklist.append(merged)

        report.total_time = time.perf_counter() - start
        report.comparisons = self.ranker.stats.comparisons
        report.size_after = module_size(module)
        if self.engine is not None:
            stats = self.engine.cache.stats.to_dict()
            stats["plan"] = self.engine.plans.stats.to_dict()
            report.align_cache_stats = stats
        if self.metrics is not None:
            self._record_metrics(report)
        return report

    def _record_metrics(self, report: MergeReport) -> None:
        """Fold the finished report into the attached metrics registry.

        Runs once per pass, after the timed region, so attaching a
        registry costs the attempts themselves nothing.
        """
        metrics = self.metrics
        metrics.absorb_counts("merge.outcome", report.outcome_counts())
        metrics.counter("merge.attempts").inc(len(report.attempts))
        metrics.counter("merge.merges").inc(report.merges)
        metrics.gauge("merge.size_before").set(report.size_before)
        metrics.gauge("merge.size_after").set(report.size_after)
        metrics.histogram("merge.preprocess_s").observe(report.preprocess_time)
        stage_hists = {
            "rank": metrics.histogram("merge.stage.rank_s"),
            "bound": metrics.histogram("merge.stage.bound_s"),
            "align": metrics.histogram("merge.stage.align_s"),
            "codegen": metrics.histogram("merge.stage.codegen_s"),
            "staticcheck": metrics.histogram("merge.stage.staticcheck_s"),
            "validate": metrics.histogram("merge.stage.validate_s"),
            "oracle": metrics.histogram("merge.stage.oracle_s"),
            "commit": metrics.histogram("merge.stage.commit_s"),
        }
        for att in report.attempts:
            stage_hists["rank"].observe(att.ranking_time)
            if att.bound_time:
                stage_hists["bound"].observe(att.bound_time)
            if att.align_time:
                stage_hists["align"].observe(att.align_time)
            if att.codegen_time:
                stage_hists["codegen"].observe(att.codegen_time)
            if att.static_time:
                stage_hists["staticcheck"].observe(att.static_time)
            if att.validate_time:
                stage_hists["validate"].observe(att.validate_time)
            if att.validate_verdict is not None:
                metrics.counter(f"merge.validate.{att.validate_verdict}").inc()
            if att.oracle_time:
                stage_hists["oracle"].observe(att.oracle_time)
            if att.update_time:
                stage_hists["commit"].observe(att.update_time)

    # -- body-derived memo hygiene ----------------------------------------------------
    def _invalidate(self, functions) -> None:
        """Drop memoized body-derived state for *functions*.

        Called with every function a transaction captured: a committed
        merge rewrote call sites inside their blocks (or replaced their
        bodies with thunks), and a commit-stage rollback re-cloned their
        bodies into fresh block objects.  Cheap failure paths never
        capture, so their memo entries stay live.
        """
        for func in functions:
            if self.engine is not None:
                self.engine.invalidate_function(func)
            if self._fp_memo is not None:
                self._fp_memo.invalidate_function(func)
            self.bound.invalidate(func)

    # -- one candidate --------------------------------------------------------------
    def _attempt(self, module, func, consumed, threshold):
        """Returns ``(record, merged_function_or_None)``.

        The whole attempt runs inside a :class:`MergeTransaction`; every
        exit path either commits the transaction (successful merge) or
        rolls it back, so the module is never left half-mutated.
        """
        with trace.span("attempt", fn=func.name) as sp:
            record, merged = self._attempt_guarded(module, func, consumed, threshold)
            sp.set(outcome=str(record.outcome), similarity=record.similarity)
            if record.candidate is not None:
                sp.set(candidate=record.candidate)
            return record, merged

    def _attempt_guarded(self, module, func, consumed, threshold):
        txn = self.transaction_factory(module)
        ctx = _AttemptContext(record=AttemptRecord(func.name, None, 0.0, Outcome.NO_CANDIDATE))
        try:
            return self._attempt_stages(module, func, consumed, threshold, txn, ctx)
        except (MergeError, VerificationError) as exc:
            # Expected rejections from codegen/verification — and, via
            # CommitError, structural failures while applying the commit.
            touched = txn.captured_functions()
            txn.rollback()
            self._invalidate(touched)
            outcome = (
                Outcome.ROLLED_BACK
                if ctx.stage == "commit"
                else Outcome.CODEGEN_FAIL
            )
            return self._fail(ctx, exc, outcome), None
        except RecursionError:
            # Containing a blown interpreter/codegen stack is not safe —
            # Python may be out of stack for the rollback itself.
            raise
        except Exception as exc:
            mutated = txn.captured
            touched = txn.captured_functions()
            txn.rollback()
            self._invalidate(touched)
            if self.config.on_error == "raise":
                raise
            outcome = Outcome.ROLLED_BACK if mutated else Outcome.INTERNAL_ERROR
            return self._fail(ctx, exc, outcome), None

    @staticmethod
    def _fail(ctx: "_AttemptContext", exc, outcome) -> AttemptRecord:
        record = ctx.record
        # An injected fault may fire at a sub-stage of the pipeline stage
        # (fingerprint/lsh inside rank); prefer its own stage when present.
        stage = getattr(exc, "fault_stage", None) or ctx.stage
        record.outcome = outcome
        record.error = f"{stage}:{type(exc).__name__}"
        return record

    def _attempt_stages(
        self,
        module,
        func,
        consumed,
        threshold,
        txn: MergeTransaction,
        ctx: "_AttemptContext",
    ) -> Tuple[AttemptRecord, Optional[object]]:
        """The happy path; any exception escapes to :meth:`_attempt`, which
        reads the failure stage and partial timings back off *ctx.record*."""
        record = ctx.record
        ctx.stage = "rank"
        # Stage spans share their names with the profiler's PERF_STAGES
        # keys, so span_totals() and the stage table describe the same
        # regions (gated within 5% by benchmarks/test_obs_overhead.py).
        with trace.span("rank"):
            t0 = time.perf_counter()
            if self.faults is not None:
                self.faults.hit("rank")
            match = self.ranker.best_match(func)
            record.ranking_time = time.perf_counter() - t0

        if match is None:
            return record, None
        other = match.function
        record.candidate = other.name
        record.similarity = match.similarity
        if match.similarity < threshold:
            record.outcome = Outcome.REJECTED_THRESHOLD
            return record, None

        if self.config.prealign_bound:
            ctx.stage = "bound"
            with trace.span("bound"):
                t0 = time.perf_counter()
                try:
                    bound, shared_pairs = self.bound.query(func, other)
                finally:
                    record.bound_time = time.perf_counter() - t0
            if shared_pairs == 0 or bound <= 0:
                # No common mergeability class means alignment would match
                # nothing; a non-positive saving bound means profitability
                # (saving > 0) can never hold.  Either way this pair can
                # never merge — skip alignment and codegen.
                record.outcome = Outcome.REJECTED_BOUND
                return record, None

        ctx.stage = "align"
        with trace.span("align", fn_a=func.name, fn_b=other.name):
            t0 = time.perf_counter()
            try:
                if self.faults is not None:
                    self.faults.hit("align")
                if func.return_type is not other.return_type:
                    record.outcome = Outcome.ALIGN_FAIL
                    return record, None
                if self.engine is not None:
                    alignment = self.engine.align_functions(
                        func, other, strategy=self.config.alignment
                    )
                else:
                    alignment = align_functions(
                        func,
                        other,
                        strategy=self.config.alignment,
                        fp_memo=self._fp_memo,
                    )
            finally:
                record.align_time = time.perf_counter() - t0
        record.alignment_ratio = alignment.alignment_ratio
        if alignment.matched_instructions == 0:
            record.outcome = Outcome.ALIGN_FAIL
            return record, None

        ctx.stage = "codegen"
        with trace.span("codegen"):
            t0 = time.perf_counter()
            try:
                if self.faults is not None:
                    self.faults.hit("codegen")
                result: MergeResult = merge_functions(
                    alignment,
                    module,
                    options=MergeOptions(legacy_bugs=self.config.legacy_bugs),
                )
                ctx.stage = "verify"
                if self.config.verify:
                    if self.faults is not None:
                        self.faults.hit("verify")
                    verify_function(result.merged)
            finally:
                record.codegen_time = time.perf_counter() - t0

        benefit = self.profitability.evaluate(result)
        if not benefit.profitable:
            txn.rollback()
            record.outcome = Outcome.UNPROFITABLE
            return record, None

        if self.config.static_check:
            ctx.stage = "staticcheck"
            with trace.span("staticcheck"):
                t0 = time.perf_counter()
                try:
                    if self.faults is not None:
                        self.faults.hit("staticcheck")
                    static_errors = errors_only(lint_merge(result, module))
                finally:
                    record.static_time = time.perf_counter() - t0
            if static_errors:
                txn.rollback()
                record.outcome = Outcome.STATIC_FAIL
                first = static_errors[0]
                record.error = f"static:{first.checker}:{first.message}"
                return record, None

        run_oracle = self.oracle is not None
        if self.config.validate != "off":
            ctx.stage = "validate"
            with trace.span("validate"):
                t0 = time.perf_counter()
                try:
                    if self.faults is not None:
                        self.faults.hit("validate")
                    validation = validate_merge(result)
                finally:
                    record.validate_time = time.perf_counter() - t0
            record.validate_verdict = validation.verdict
            if self.config.validate == "gate":
                if validation.verdict == REFUTED:
                    txn.rollback()
                    record.outcome = Outcome.VALIDATE_FAIL
                    first = validation.diagnostics[0]
                    record.error = f"validate:{first.code}:{first.message}"
                    return record, None
                if validation.verdict == PROVED:
                    # The simulation relation covers every input the
                    # oracle could sample; skip the expensive re-execution.
                    run_oracle = False
                # unknown: fall through — escalate to the oracle when one
                # is configured, otherwise let the remaining gates decide.

        if run_oracle:
            ctx.stage = "oracle"
            with trace.span("oracle"):
                t0 = time.perf_counter()
                try:
                    if self.faults is not None:
                        self.faults.hit("oracle")
                    verdict = self.oracle.check(result)
                finally:
                    record.oracle_time = time.perf_counter() - t0
            if not verdict.equivalent:
                txn.rollback()
                # A merged function that only *times out* (its fuel budget,
                # guard headroom included, ran dry while the original
                # terminated) is a distinct outcome from a behavioural
                # divergence: it usually means an introduced infinite loop.
                record.outcome = (
                    Outcome.ORACLE_TIMEOUT
                    if verdict.timed_out
                    else Outcome.ORACLE_FAIL
                )
                record.error = f"oracle:{verdict.divergences[0]}"
                return record, None

        ctx.stage = "commit"
        with trace.span("commit"):
            t0 = time.perf_counter()
            txn.capture_commit_set(result.function_a, result.function_b)
            touched = txn.captured_functions()
            commit_merge(result, faults=self.faults)
            if self.config.static_check:
                # Re-lint the *applied* commit (thunk shape, call-site
                # rewrites, dangling references) while the transaction can
                # still undo it.
                t1 = time.perf_counter()
                commit_errors = errors_only(lint_commit(result, module))
                record.static_time += time.perf_counter() - t1
                if commit_errors:
                    txn.rollback()
                    self._invalidate(touched)
                    record.outcome = Outcome.STATIC_FAIL
                    first = commit_errors[0]
                    record.error = f"static:{first.checker}:{first.message}"
                    return record, None
            txn.commit()
            self._invalidate(touched)
            self.ranker.remove(func)
            self.ranker.remove(other)
            consumed.add(id(func))
            consumed.add(id(other))
            record.update_time = time.perf_counter() - t0
        record.saving = benefit.saving
        record.outcome = Outcome.MERGED
        record.merged_name = result.merged.name
        return record, result.merged
