"""The function-merging pass: ranking → alignment → codegen → commit.

This is the top-level optimization shared by the baseline and F3M; the
*ranker* argument selects the paper's configurations:

* ``ExhaustiveRanker()`` — HyFM (state of the art).
* ``MinHashLSHRanker()`` — F3M static (k=200, r=2, b=100, t=0).
* ``MinHashLSHRanker(adaptive=True)`` — F3M adaptive (Section III-D).

The pass walks functions in module order, asks the ranker for the most
similar live candidate, aligns the pair block-wise, generates the merged
function and commits it when the size model finds it profitable.  Every
stage is timed per attempt so that the paper's breakdown figures can be
regenerated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..alignment.hyfm_blocks import align_functions
from ..analysis.size import module_size
from ..ir.module import Module
from ..ir.verifier import VerificationError, verify_function
from ..search.pairing import Ranker
from .errors import MergeError
from .merger import MergeOptions, MergeResult, merge_functions
from .profitability import ProfitabilityModel
from .report import AttemptRecord, MergeReport
from .thunks import commit_merge

__all__ = ["PassConfig", "FunctionMergingPass"]


@dataclass(frozen=True)
class PassConfig:
    """Pass-wide options.

    ``threshold`` — similarity threshold t below which ranked pairs are
    rejected before alignment (Section III-D; HyFM effectively uses 0).
    ``alignment`` — ``"linear"`` (HyFM's fast pairwise strategy, the paper's
    configuration) or ``"nw"`` (SalSSA-quality Needleman–Wunsch).
    ``legacy_bugs`` — re-enable the HyFM codegen bugs of Section III-E.
    ``verify`` — run the IR verifier on every merged function (slower;
    always on in tests, optional in benchmarks).
    ``min_instructions`` — skip trivially small functions as candidates.
    ``remerge`` — merged functions re-enter the candidate pool, so whole
    families collapse into one function across successive merges (the
    paper's Fig. 1 workflow replaces the pair with the merged function in
    the module being optimized).
    """

    threshold: float = 0.0
    alignment: str = "linear"
    legacy_bugs: bool = False
    verify: bool = True
    min_instructions: int = 1
    remerge: bool = True


class FunctionMergingPass:
    """Apply function merging over a whole module."""

    def __init__(self, ranker: Ranker, config: PassConfig = PassConfig()) -> None:
        self.ranker = ranker
        self.config = config
        self.profitability = ProfitabilityModel()

    # -- driver ---------------------------------------------------------------------
    def run(self, module: Module, functions=None) -> MergeReport:
        """Merge over *module*; *functions* optionally restricts the
        candidate population (used by profile-guided merging)."""
        report = MergeReport(strategy=self.ranker.name)
        report.size_before = module_size(module)
        start = time.perf_counter()

        population = functions if functions is not None else module.defined_functions()
        functions = [
            f
            for f in population
            if f.num_instructions >= self.config.min_instructions
        ]
        report.num_functions = len(functions)

        t0 = time.perf_counter()
        self.ranker.preprocess(functions)
        report.preprocess_time = time.perf_counter() - t0

        consumed = set()
        # The ranker's threshold (adaptive variant) overrides the static one.
        threshold = max(self.config.threshold, getattr(self.ranker, "threshold", 0.0))

        worklist = list(functions)
        index = 0
        while index < len(worklist):
            func = worklist[index]
            index += 1
            if id(func) in consumed:
                continue
            attempt, merged = self._attempt(module, func, consumed, threshold)
            report.attempts.append(attempt)
            if attempt.success:
                report.merges += 1
                if self.config.remerge and merged is not None:
                    self.ranker.insert(merged)
                    worklist.append(merged)

        report.total_time = time.perf_counter() - start
        report.comparisons = self.ranker.stats.comparisons
        report.size_after = module_size(module)
        return report

    # -- one candidate --------------------------------------------------------------
    def _attempt(self, module, func, consumed, threshold):
        """Returns ``(record, merged_function_or_None)``."""
        t0 = time.perf_counter()
        match = self.ranker.best_match(func)
        ranking_time = time.perf_counter() - t0

        if match is None:
            return (
                AttemptRecord(
                    func.name, None, 0.0, "no_candidate", ranking_time=ranking_time
                ),
                None,
            )
        other = match.function
        record = AttemptRecord(
            func.name, other.name, match.similarity, "", ranking_time=ranking_time
        )
        if match.similarity < threshold:
            record.outcome = "rejected_threshold"
            return record, None

        t0 = time.perf_counter()
        if func.return_type is not other.return_type:
            record.align_time = time.perf_counter() - t0
            record.outcome = "align_fail"
            return record, None
        alignment = align_functions(func, other, strategy=self.config.alignment)
        record.align_time = time.perf_counter() - t0
        record.alignment_ratio = alignment.alignment_ratio
        if alignment.matched_instructions == 0:
            record.outcome = "align_fail"
            return record, None

        t0 = time.perf_counter()
        result: Optional[MergeResult] = None
        try:
            result = merge_functions(
                alignment,
                module,
                options=MergeOptions(legacy_bugs=self.config.legacy_bugs),
            )
            if self.config.verify:
                verify_function(result.merged)
        except (MergeError, VerificationError):
            if result is not None and result.merged.parent is module:
                result.merged.erase_from_parent()
            record.codegen_time = time.perf_counter() - t0
            record.outcome = "codegen_fail"
            return record, None
        record.codegen_time = time.perf_counter() - t0

        benefit = self.profitability.evaluate(result)
        if not benefit.profitable:
            result.merged.erase_from_parent()
            record.outcome = "unprofitable"
            return record, None

        t0 = time.perf_counter()
        commit_merge(result)
        self.ranker.remove(func)
        self.ranker.remove(other)
        consumed.add(id(func))
        consumed.add(id(other))
        record.update_time = time.perf_counter() - t0
        record.saving = benefit.saving
        record.outcome = "merged"
        return record, result.merged
