"""Function merging: codegen, SSA repair, profitability, and the pass."""

from .errors import CommitError, MergeError
from .identical import IdenticalMergeReport, merge_identical_functions, structural_hash
from .merger import MergeOptions, MergeResult, merge_functions
from .partitioned import (
    PartitionedMergeReport,
    SweepPartitionResult,
    SweepReport,
    optimistic_sweep,
    partition_functions,
    partition_sweep,
    partitioned_merging,
)
from .pass_ import FunctionMergingPass, PassConfig
from .reconcile import ReconcileReport, RetainingTransaction
from .pgo import HotnessFilter, ProfileGuidedPass, profile_module
from .profitability import MergeBenefit, ProfitabilityBound, ProfitabilityModel
from .report import AttemptRecord, MergeReport, Outcome
from .ssa_repair import find_dominance_violations, repair_ssa
from .thunks import commit_merge, make_thunk, rewrite_call_sites
from .transaction import MergeTransaction

__all__ = [
    "CommitError",
    "MergeError",
    "MergeTransaction",
    "Outcome",
    "IdenticalMergeReport",
    "merge_identical_functions",
    "structural_hash",
    "HotnessFilter",
    "PartitionedMergeReport",
    "ReconcileReport",
    "RetainingTransaction",
    "SweepPartitionResult",
    "SweepReport",
    "optimistic_sweep",
    "partition_functions",
    "partition_sweep",
    "partitioned_merging",
    "ProfileGuidedPass",
    "profile_module",
    "MergeOptions",
    "MergeResult",
    "merge_functions",
    "FunctionMergingPass",
    "PassConfig",
    "MergeBenefit",
    "ProfitabilityBound",
    "ProfitabilityModel",
    "AttemptRecord",
    "MergeReport",
    "find_dominance_violations",
    "repair_ssa",
    "commit_merge",
    "make_thunk",
    "rewrite_call_sites",
]
