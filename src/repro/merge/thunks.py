"""Call-site redirection and thunk generation for committed merges.

After a profitable merge, every direct call to an original function is
rewritten to call the merged function with the appropriate function-id
constant.  Originals that may be referenced indirectly (address taken) or
from outside the module (external linkage) are kept as one-block *thunks*;
everything else is deleted outright.
"""

from __future__ import annotations

from typing import List, Optional

from ..faults import FaultInjector
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, Call, Instruction, Invoke, Ret
from ..ir.types import I1
from ..ir.values import ConstantInt, UndefValue, Value
from .errors import CommitError
from .merger import MergeResult

__all__ = ["commit_merge", "rewrite_call_sites", "make_thunk", "thunk_target"]


def thunk_target(func: Function) -> Optional[Call]:
    """The forwarding call if *func* has :func:`make_thunk` shape, else ``None``.

    A thunk is a single block holding exactly a direct call plus a ``ret``
    of that call's result (or ``ret void``).  Callers — notably the
    translation validator — use this to redirect a call *through* the
    thunk to the underlying merged function; the rewrite is
    behaviour-preserving for any function of this shape, thunk or not.
    """
    blocks = func.blocks
    if len(blocks) != 1:
        return None
    insts = blocks[0].instructions
    if len(insts) != 2:
        return None
    call, ret = insts
    if not isinstance(call, Call) or not isinstance(ret, Ret):
        return None
    if not isinstance(call.callee, Function):
        return None
    if ret.value is not None and ret.value is not call:
        return None
    return call


def _merged_args(
    merged: Function, param_map: List[int], originals: List[Value], fid: int
) -> List[Value]:
    """Argument vector for a call to *merged* standing in for an original."""
    args: List[Value] = [
        UndefValue(p.type) for p in merged.args
    ]
    args[0] = ConstantInt(I1, fid)
    for value, slot in zip(originals, param_map):
        args[slot] = value
    return args


def rewrite_call_sites(original: Function, merged: Function, param_map: List[int], fid: int) -> int:
    """Retarget every direct call/invoke of *original* to *merged*."""
    rewritten = 0
    for site in original.callers():
        block = site.parent
        if block is None:
            continue
        new_inst: Instruction
        if isinstance(site, Call):
            new_inst = Call(merged, _merged_args(merged, param_map, list(site.args), fid))
        elif isinstance(site, Invoke):
            new_inst = Invoke(
                merged,
                _merged_args(merged, param_map, list(site.args), fid),
                site.normal_dest,
                site.unwind_dest,
            )
        else:  # pragma: no cover - callers() only returns calls/invokes
            continue
        new_inst.name = site.name
        block.insert_before(site, new_inst)
        site.replace_all_uses_with(new_inst)
        site.erase_from_parent()
        rewritten += 1
    return rewritten


def make_thunk(original: Function, merged: Function, param_map: List[int], fid: int) -> None:
    """Replace *original*'s body with a tail-call into *merged*."""
    original.drop_body()
    entry = BasicBlock("entry", original)
    call = Call(merged, _merged_args(merged, param_map, list(original.args), fid))
    call.name = "fwd" if not call.type.is_void else ""
    entry.append(call)
    entry.append(Ret(None if original.return_type.is_void else call))


def commit_merge(result: MergeResult, faults: Optional[FaultInjector] = None) -> None:
    """Apply a profitable merge to the module: redirect, thunk or delete.

    Not atomic on its own — a failure part-way (including one injected via
    *faults*, which fires between the two originals so the module is
    genuinely half-rewritten) leaves the module inconsistent.  The pass
    wraps this call in a :class:`~repro.merge.transaction.MergeTransaction`
    that restores the pre-attempt state on any escape.
    """
    merged = result.merged
    module = merged.parent
    if module is None:
        raise CommitError("merged function must be in a module")
    for index, (func, param_map, fid) in enumerate(
        (
            (result.function_a, result.param_map_a, 0),
            (result.function_b, result.param_map_b, 1),
        )
    ):
        if index == 1 and faults is not None:
            faults.hit("commit")
        rewrite_call_sites(func, merged, param_map, fid)
        if func.address_taken or not func.internal:
            make_thunk(func, merged, param_map, fid)
        else:
            if func.num_uses != 0:
                raise CommitError(f"dangling uses of @{func.name}")
            func.erase_from_parent()
