"""Stage-level accounting for the merging pass.

The paper's Figures 3 and 13 break the pass runtime into preprocess /
ranking / align / codegen stages, each split by whether the attempt
ultimately succeeded.  :class:`MergeReport` collects exactly that, plus the
pair-level records behind Figures 6, 9 and 14.

Outcomes are a *closed* enum (:class:`Outcome`): every attempt ends in
exactly one of these states, and constructing a record with anything else
raises immediately instead of silently splitting the aggregation keyspace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Union

__all__ = ["Outcome", "AttemptRecord", "MergeReport", "STAGES", "OUTCOMES"]

STAGES = (
    "preprocess",
    "ranking",
    "bound",
    "align",
    "codegen",
    "staticcheck",
    "validate",
    "oracle",
    "update",
)


class Outcome(str, Enum):
    """Every way one candidate's trip through the pipeline can end.

    The string values are the stable, externally visible names (reports,
    tables, CLI output); the enum being a ``str`` subclass keeps existing
    ``record.outcome == "merged"`` comparisons working.

    **Member definition order is the canonical display order** — success
    first, then rejections in the order the pipeline can produce them
    (ranking → threshold → bound → alignment → codegen → profitability →
    static gate → oracle gate), then the containment outcomes.  Everything
    that enumerates outcomes (:data:`OUTCOMES`,
    :meth:`MergeReport.outcome_counts`, the harness outcome table, run
    manifests) derives its order from here and nowhere else.
    """

    MERGED = "merged"
    NO_CANDIDATE = "no_candidate"
    REJECTED_THRESHOLD = "rejected_threshold"
    # The pre-alignment profitability bound proved the pair can never be
    # profitable, so alignment and codegen were skipped entirely.
    REJECTED_BOUND = "rejected_bound"
    ALIGN_FAIL = "align_fail"
    CODEGEN_FAIL = "codegen_fail"
    UNPROFITABLE = "unprofitable"
    # Robustness outcomes: the static merge-safety linter or the
    # differential oracle vetoed the commit, an unexpected exception was
    # contained before any module mutation, or a partially applied commit
    # was undone by the transaction layer.
    STATIC_FAIL = "static_fail"
    # The translation validator refuted the merge: the product-CFG walk
    # found a definitive miscompile (demote-contract violation or a
    # constant return divergence) without executing anything.
    VALIDATE_FAIL = "validate_fail"
    ORACLE_FAIL = "oracle_fail"
    # The oracle could not finish the merged side within its step budget
    # (guard/select headroom included) while the original terminated: the
    # merge introduced an (effective) infinite loop rather than a wrong
    # value, so it is vetoed under a distinct name.
    ORACLE_TIMEOUT = "oracle_timeout"
    INTERNAL_ERROR = "internal_error"
    ROLLED_BACK = "rolled_back"

    def __str__(self) -> str:
        return self.value


#: Canonical outcome order (the Outcome definition order); every table and
#: manifest renders outcomes in exactly this sequence.
OUTCOMES = tuple(o.value for o in Outcome)


@dataclass
class AttemptRecord:
    """One candidate function's trip through the pipeline."""

    function: str
    candidate: Optional[str]
    similarity: float
    outcome: Union[Outcome, str]
    alignment_ratio: float = 0.0
    saving: int = 0
    ranking_time: float = 0.0
    bound_time: float = 0.0
    align_time: float = 0.0
    codegen_time: float = 0.0
    static_time: float = 0.0
    validate_time: float = 0.0
    oracle_time: float = 0.0
    update_time: float = 0.0
    # Translation-validator verdict ("proved" | "refuted" | "unknown")
    # when the validate stage ran; None when it was off.
    validate_verdict: Optional[str] = None
    # Name of the merged function a successful attempt created (None for
    # every non-merged outcome).  Sweep replay uses this to map worker-side
    # names onto the functions the parent-module replay produces.
    merged_name: Optional[str] = None
    # Structured failure detail: "<stage>:<ExceptionType>" for contained
    # faults, or the oracle's first divergence description.
    error: Optional[str] = None

    def __post_init__(self) -> None:
        self.outcome = Outcome(self.outcome)

    @property
    def success(self) -> bool:
        return self.outcome == Outcome.MERGED


@dataclass
class MergeReport:
    """Aggregate result of one :class:`FunctionMergingPass` run."""

    strategy: str = ""
    num_functions: int = 0
    size_before: int = 0
    size_after: int = 0
    preprocess_time: float = 0.0
    total_time: float = 0.0
    attempts: List[AttemptRecord] = field(default_factory=list)
    comparisons: int = 0
    merges: int = 0
    # Alignment-decision cache counters (None when the batched alignment
    # engine was off).  Cumulative over the engine's lifetime, so passes
    # sharing one engine see the shared totals.
    align_cache_stats: Optional[Dict[str, object]] = None

    # -- headline numbers ---------------------------------------------------------
    @property
    def size_reduction(self) -> float:
        """Fractional object-size reduction (the paper's headline metric)."""
        if self.size_before == 0:
            return 0.0
        return 1.0 - self.size_after / self.size_before

    @property
    def merge_time(self) -> float:
        """Total time spent inside the merging pass."""
        return self.total_time

    # -- stage breakdown (Figures 3 and 13) -----------------------------------------
    def stage_breakdown(self) -> Dict[str, float]:
        """Stage → seconds, with ranking/align/codegen split by outcome."""
        out: Dict[str, float] = {"preprocess": self.preprocess_time}
        buckets = {
            "ranking_success": 0.0,
            "ranking_fail": 0.0,
            "bound": 0.0,
            "align_success": 0.0,
            "align_fail": 0.0,
            "codegen_success": 0.0,
            "codegen_fail": 0.0,
            "staticcheck": 0.0,
            "validate": 0.0,
            "oracle": 0.0,
            "update": 0.0,
        }
        for att in self.attempts:
            key = "success" if att.success else "fail"
            buckets[f"ranking_{key}"] += att.ranking_time
            buckets["bound"] += att.bound_time
            buckets[f"align_{key}"] += att.align_time
            buckets[f"codegen_{key}"] += att.codegen_time
            buckets["staticcheck"] += att.static_time
            buckets["validate"] += att.validate_time
            buckets["oracle"] += att.oracle_time
            buckets["update"] += att.update_time
        out.update(buckets)
        return out

    def outcome_counts(self) -> Dict[str, int]:
        """Attempt count per outcome, keyed by the stable string values."""
        counts = {outcome: 0 for outcome in OUTCOMES}
        for att in self.attempts:
            counts[Outcome(att.outcome).value] += 1
        return counts

    def successful_attempts(self) -> List[AttemptRecord]:
        return [a for a in self.attempts if a.success]

    def contained_failures(self) -> List[AttemptRecord]:
        """Attempts that failed unexpectedly but were contained (the pass
        kept going and the module was restored)."""
        return [
            a
            for a in self.attempts
            if a.outcome in (Outcome.INTERNAL_ERROR, Outcome.ROLLED_BACK)
        ]

    def summary(self) -> str:
        counts = self.outcome_counts()
        return (
            f"{self.strategy}: {self.num_functions} functions, "
            f"{self.merges} merges, size {self.size_before} -> {self.size_after} "
            f"({self.size_reduction:.1%} reduction), "
            f"{self.total_time:.3f}s pass time, "
            f"{self.comparisons} fingerprint comparisons, "
            f"outcomes={ {k: v for k, v in counts.items() if v} }"
        )
