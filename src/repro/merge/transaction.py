"""Transactional protection for merge attempts.

Committing a merge is a multi-step module mutation — rewrite every call
site of both originals, thunk or delete the originals — and any failure
part-way through (a codegen bug, a vetoed oracle check, an injected
fault) would otherwise leave the module half-rewritten.  A
:class:`MergeTransaction` brackets one attempt:

* at construction it records the module's function table (names, order);
* :meth:`capture` snapshots the bodies of functions about to be mutated
  (the two originals plus every function containing a call site of
  either) as *detached* clones whose operand uses are unregistered, so
  the snapshot is invisible to use-count queries on the live module;
* :meth:`rollback` restores captured bodies onto the *same* function
  objects (identity is preserved — rankers and worklists keep working),
  re-adds any function the commit deleted, erases any function the
  attempt created, and restores the original function-table order so the
  module prints bit-identically to its pre-attempt snapshot;
* :meth:`commit` discards the snapshots.

The snapshot cost is proportional to the functions actually touched by
the attempt, not to the module, so the common failure paths (rejected
threshold, failed alignment) pay nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..ir.clone import clone_function_into
from ..ir.function import Function
from ..ir.module import Module
from ..obs import trace

__all__ = ["MergeTransaction"]


@dataclass
class _FunctionBackup:
    """Detached body clone plus the mutable attributes of one function."""

    function: Function
    body: Function
    internal: bool
    name: str
    name_counter: int


def _unlink_uses(func: Function) -> None:
    """Unregister every operand use in *func* while keeping operand lists.

    Backup clones are templates, never executed or traversed through
    use-def chains; leaving their uses registered would inflate
    ``num_uses``/``callers()`` on live functions and break the dangling-use
    check during commit.
    """
    for block in func.blocks:
        for inst in block.instructions:
            for idx, op in enumerate(inst._operands):
                op._remove_use(inst, idx)


class MergeTransaction:
    """All-or-nothing bracket around one merge attempt on *module*."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self._baseline_order: List[str] = list(module._functions.keys())
        self._baseline_names = set(self._baseline_order)
        self._backups: Dict[int, _FunctionBackup] = {}
        self._closed = False

    # -- snapshotting ------------------------------------------------------------
    @property
    def captured(self) -> bool:
        """True once any function body has been snapshotted."""
        return bool(self._backups)

    def captured_functions(self) -> List[Function]:
        """The live functions whose bodies have been snapshotted.

        These are exactly the functions a commit (or its rollback) may
        mutate — the set callers use to invalidate body-derived memos
        (alignment encodings, block fingerprints, profitability profiles).
        """
        return [backup.function for backup in self._backups.values()]

    def capture(self, *functions: Function) -> None:
        """Snapshot *functions* (idempotent per function)."""
        if self._closed:
            raise RuntimeError("transaction already closed")
        for func in functions:
            if func is None or id(func) in self._backups:
                continue
            backup = Function(func.ftype, func.name)
            for src, dst in zip(func.args, backup.args):
                dst.name = src.name
            clone_function_into(func, backup)
            _unlink_uses(backup)
            self._backups[id(func)] = _FunctionBackup(
                func, backup, func.internal, func.name, func._name_counter
            )

    def capture_commit_set(self, *originals: Function) -> None:
        """Snapshot *originals* plus every function calling into them."""
        affected = list(originals)
        for func in originals:
            for site in func.callers():
                block = site.parent
                caller = block.parent if block is not None else None
                if caller is not None:
                    affected.append(caller)
        self.capture(*affected)

    # -- resolution --------------------------------------------------------------
    def commit(self) -> None:
        """Keep the mutations; drop the snapshots."""
        trace.event("txn_commit", captured=len(self._backups))
        self._backups.clear()
        self._closed = True

    def rollback(self) -> None:
        """Restore the module to its state at transaction start.

        Idempotent: a second call (or a call after :meth:`commit`) is a
        no-op so failure-path cleanup can never mask the original error.
        """
        if self._closed:
            return
        trace.event("txn_rollback", captured=len(self._backups))
        module = self.module
        # 1. Restore captured bodies onto the original function objects.
        for backup in self._backups.values():
            func = backup.function
            func.drop_body()
            vmap = {
                id(src): dst for src, dst in zip(backup.body.args, func.args)
            }
            clone_function_into(backup.body, func, vmap)
            func.internal = backup.internal
            func.name = backup.name
            func._name_counter = backup.name_counter
            if module._functions.get(func.name) is not func:
                func.parent = module
                module._functions[func.name] = func
        # 2. Erase anything the attempt added (e.g. the merged function).
        for func in list(module._functions.values()):
            if func.name not in self._baseline_names:
                func.erase_from_parent()
        # 3. Restore the function-table order so printing is bit-identical.
        #    Only needed when membership changed; plain deletions above keep
        #    the relative order of survivors.
        if self._backups:
            module._functions = {
                name: module._functions[name]
                for name in self._baseline_order
                if name in module._functions
            }
        self._backups.clear()
        self._closed = True
