"""Identical-function merging — the classic GCC/LLVM ``mergefunc`` baseline.

Paper Section V: "Established compilers ... provide a target-independent
optimization for merging identical functions at the IR level.  Merging only
identical candidates allows for an efficient exploration based on a hashing
strategy, since identical functions have identical hashes."

We hash each function's canonical structural form (uniquified textual
printing with the name stripped); functions in the same hash bucket are
checked for exact structural equality, then all copies are redirected to
one representative.  This is both a baseline for the evaluation and a
pre-pass users can run before similarity-based merging.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List

from ..fingerprint.fnv import fnv1a_32
from ..ir.clone import clone_function
from ..ir.function import Function
from ..ir.module import Module
from ..ir.printer import print_function
from .thunks import rewrite_call_sites

__all__ = ["IdenticalMergeReport", "structural_hash", "merge_identical_functions"]


def _canonical_text(func: Function) -> str:
    """Canonical body text: clone, uniquify names, strip the symbol name.

    Cloning keeps canonicalization from renaming the user's values.
    """
    scratch = clone_function(func, "__canon__")
    scratch.uniquify_names()
    text = print_function(scratch)
    scratch.drop_body()
    # Remove the function name so identical bodies with different symbol
    # names hash equal; the parameter list stays (signatures must match).
    header_end = text.index("(")
    return text[: text.index("@")] + text[header_end:]


def structural_hash(func: Function) -> int:
    """A 32-bit hash equal for structurally identical functions."""
    return fnv1a_32(_canonical_text(func).encode("utf-8"))


@dataclass
class IdenticalMergeReport:
    groups: int = 0
    functions_removed: int = 0
    call_sites_rewritten: int = 0
    time: float = 0.0
    representative_of: Dict[str, str] = field(default_factory=dict)


def merge_identical_functions(module: Module) -> IdenticalMergeReport:
    """Fold every set of structurally identical functions into one.

    Internal duplicates are deleted outright after their call sites are
    redirected; externally-visible or address-taken duplicates keep their
    symbol but become thunk-free aliases (their body is replaced by a tail
    call), mirroring LLVM's ``mergefunc`` behaviour.
    """
    report = IdenticalMergeReport()
    start = time.perf_counter()

    buckets: Dict[int, List[Function]] = {}
    texts: Dict[int, str] = {}
    for func in module.defined_functions():
        h = structural_hash(func)
        buckets.setdefault(h, []).append(func)
        texts[id(func)] = _canonical_text(func)

    for bucket in buckets.values():
        if len(bucket) < 2:
            continue
        # Group by exact canonical text (hash collisions are possible).
        by_text: Dict[str, List[Function]] = {}
        for func in bucket:
            by_text.setdefault(texts[id(func)], []).append(func)
        for group in by_text.values():
            if len(group) < 2:
                continue
            report.groups += 1
            representative = group[0]
            for dup in group[1:]:
                report.representative_of[dup.name] = representative.name
                # Identical signature: forward call sites argument-for-
                # argument by RAUW on the callee operand.
                for site in dup.callers():
                    site.set_operand(0, representative)
                    report.call_sites_rewritten += 1
                if dup.address_taken or not dup.internal:
                    from ..ir.basicblock import BasicBlock
                    from ..ir.instructions import Call, Ret

                    dup.drop_body()
                    entry = BasicBlock("entry", dup)
                    call = Call(representative, list(dup.args))
                    if not call.type.is_void:
                        call.name = "fwd"
                    entry.append(call)
                    entry.append(
                        Ret(None if dup.return_type.is_void else call)
                    )
                else:
                    dup.erase_from_parent()
                    report.functions_removed += 1

    report.time = time.perf_counter() - start
    return report
