"""Partitioned (ThinLTO-style) function merging.

Paper Section VI (future work): "we envisage further improvements that can
be achieved by integrating function merging to a summary-based link-time
optimization framework, such as ThinLTO in LLVM".

ThinLTO never materializes the whole program in one module: each partition
is optimized separately, guided by cheap global *summaries*.  We model the
consequence for function merging: candidate pairs can only be merged when
both functions live in the same partition, so cross-partition sibling pairs
are lost.  The partitioned pass quantifies that cost — and, because MinHash
fingerprints are exactly the kind of summary ThinLTO could distribute, the
report also counts how many of the lost pairs a summary index would have
discovered (the opportunity F3M's fingerprints make recoverable).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..fingerprint.batch import minhash_module
from ..fingerprint.cache import FingerprintCache
from ..fingerprint.fnv import fnv1a_32
from ..fingerprint.minhash import MinHashConfig
from ..ir.function import Function
from ..ir.module import Module
from ..search.pairing import MinHashLSHRanker, Ranker
from .pass_ import FunctionMergingPass, PassConfig
from .report import MergeReport

__all__ = ["PartitionedMergeReport", "partition_functions", "partitioned_merging"]


def partition_functions(module: Module, partitions: int) -> List[List[Function]]:
    """Deterministically split defined functions into *partitions* groups.

    Assignment hashes the function name, mimicking how source files (and
    thus their functions) land in different ThinLTO partitions regardless
    of similarity.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    groups: List[List[Function]] = [[] for _ in range(partitions)]
    for func in module.defined_functions():
        groups[fnv1a_32(func.name.encode("utf-8")) % partitions].append(func)
    return groups


@dataclass
class PartitionedMergeReport:
    partitions: int = 0
    reports: List[MergeReport] = field(default_factory=list)
    size_before: int = 0
    size_after: int = 0
    cross_partition_candidates: int = 0
    # Shared-cache prewarm accounting (zeros when prewarm was off).
    prewarm_time: float = 0.0
    cache_stats: Optional[Dict[str, object]] = None

    @property
    def merges(self) -> int:
        return sum(r.merges for r in self.reports)

    @property
    def size_reduction(self) -> float:
        if self.size_before == 0:
            return 0.0
        return 1.0 - self.size_after / self.size_before

    @property
    def total_time(self) -> float:
        return sum(r.total_time for r in self.reports)


def _adopt_cache(ranker: Ranker, cache: FingerprintCache) -> None:
    """Point a factory-produced ranker at the shared fingerprint cache
    (only when it supports one and does not already have its own)."""
    if isinstance(ranker, MinHashLSHRanker) and ranker.cache is None:
        ranker.cache = cache


def partitioned_merging(
    module: Module,
    partitions: int,
    ranker_factory: Callable[[], Ranker] = MinHashLSHRanker,
    config: PassConfig = PassConfig(verify=False),
    count_lost_pairs: bool = True,
    cache: Optional[FingerprintCache] = None,
    prewarm: bool = False,
    workers: Optional[int] = None,
) -> PartitionedMergeReport:
    """Merge within each partition separately; summarize the whole module.

    With ``count_lost_pairs`` a global MinHash index (the "summary") is
    consulted first to count how many functions' best global partner lives
    in another partition — the opportunity a ThinLTO integration would need
    to import across partition boundaries.

    With ``prewarm`` (or an explicit *cache*) all defined functions are
    fingerprinted up front in one batched pass — fanned out over ``workers``
    processes for large modules — into a shared content-addressed
    :class:`FingerprintCache`.  The summary ranker and every per-partition
    ranker the factory produces then hit the cache instead of recomputing,
    so the module is fingerprinted once instead of once per partition pass.
    Prewarming uses the factory ranker's static MinHash config; adaptive
    rankers derive per-partition configs, for which prewarmed entries are
    simply never consulted (correct, just not accelerated).
    """
    from ..analysis.size import module_size

    report = PartitionedMergeReport(partitions=partitions)
    report.size_before = module_size(module)

    groups = partition_functions(module, partitions)

    if prewarm and cache is None:
        cache = FingerprintCache()
    if cache is not None and prewarm:
        probe = ranker_factory()
        if isinstance(probe, MinHashLSHRanker) and not probe.adaptive:
            prewarm_config = probe._requested_config or MinHashConfig()
            t0 = time.perf_counter()
            minhash_module(
                module.defined_functions(),
                prewarm_config,
                probe.encoding,
                cache=cache,
                workers=workers,
            )
            report.prewarm_time = time.perf_counter() - t0

    if count_lost_pairs and partitions > 1:
        partition_of: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for func in group:
                partition_of[id(func)] = index
        summary: Ranker = ranker_factory()
        if cache is not None:
            _adopt_cache(summary, cache)
        summary.preprocess(module.defined_functions())
        for func in module.defined_functions():
            match = summary.best_match(func)
            if match is not None and partition_of.get(id(match.function)) != partition_of.get(
                id(func)
            ):
                report.cross_partition_candidates += 1

    for group in groups:
        ranker = ranker_factory()
        if cache is not None:
            _adopt_cache(ranker, cache)
        pass_ = FunctionMergingPass(ranker, config)
        report.reports.append(pass_.run(module, functions=group))

    report.size_after = module_size(module)
    if cache is not None:
        report.cache_stats = cache.stats.to_dict()
    return report
