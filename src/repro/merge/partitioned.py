"""Partitioned (ThinLTO-style) function merging.

Paper Section VI (future work): "we envisage further improvements that can
be achieved by integrating function merging to a summary-based link-time
optimization framework, such as ThinLTO in LLVM".

ThinLTO never materializes the whole program in one module: each partition
is optimized separately, guided by cheap global *summaries*.  We model the
consequence for function merging: within a partition-local pass, candidate
pairs can only be merged when both functions live in the same partition,
so cross-partition sibling pairs are forgone.  The partitioned pass
quantifies that cost — and, because MinHash fingerprints are exactly the
kind of summary ThinLTO could distribute, the report also counts how many
of the lost pairs a summary index would have discovered.

:func:`optimistic_sweep` then actually recovers them: phase 1 runs the
partition-local sweeps in parallel and replays their decisions
optimistically; phase 2 re-ranks every partition's survivors through one
global index and merges the cross-partition pairs, rolling back any
lower-benefit optimistic merge they conflict with (see
:mod:`repro.merge.reconcile`).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..alignment.batch import BatchAlignmentEngine
from ..fingerprint.batch import minhash_module
from ..fingerprint.cache import FingerprintCache
from ..fingerprint.fnv import fnv1a_32
from ..fingerprint.minhash import MinHashConfig
from ..ir.function import Function
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..faults import FaultInjector
from ..search.pairing import MinHashLSHRanker, Ranker
from .pass_ import FunctionMergingPass, PassConfig
from .reconcile import ReconcileReport, run_optimistic_phases
from .report import MergeReport

__all__ = [
    "PartitionedMergeReport",
    "SweepPartitionResult",
    "SweepReport",
    "optimistic_sweep",
    "partition_functions",
    "partition_sweep",
    "partitioned_merging",
]


def partition_functions(module: Module, partitions: int) -> List[List[Function]]:
    """Deterministically split defined functions into *partitions* groups.

    Assignment hashes the function name, mimicking how source files (and
    thus their functions) land in different ThinLTO partitions regardless
    of similarity.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    groups: List[List[Function]] = [[] for _ in range(partitions)]
    for func in module.defined_functions():
        groups[fnv1a_32(func.name.encode("utf-8")) % partitions].append(func)
    return groups


@dataclass
class PartitionedMergeReport:
    partitions: int = 0
    reports: List[MergeReport] = field(default_factory=list)
    size_before: int = 0
    size_after: int = 0
    cross_partition_candidates: int = 0
    # Shared-cache prewarm accounting (zeros when prewarm was off).
    prewarm_time: float = 0.0
    cache_stats: Optional[Dict[str, object]] = None
    # Alignment-decision cache counters for the engine shared across the
    # per-partition passes (None when batch alignment was off).
    align_cache_stats: Optional[Dict[str, object]] = None

    @property
    def merges(self) -> int:
        return sum(r.merges for r in self.reports)

    @property
    def size_reduction(self) -> float:
        if self.size_before == 0:
            return 0.0
        return 1.0 - self.size_after / self.size_before

    @property
    def total_time(self) -> float:
        return sum(r.total_time for r in self.reports)


def _adopt_cache(ranker: Ranker, cache: FingerprintCache) -> None:
    """Point a factory-produced ranker at the shared fingerprint cache
    (only when it supports one and does not already have its own)."""
    if isinstance(ranker, MinHashLSHRanker) and ranker.cache is None:
        ranker.cache = cache


def partitioned_merging(
    module: Module,
    partitions: int,
    ranker_factory: Callable[[], Ranker] = MinHashLSHRanker,
    config: PassConfig = PassConfig(verify=False),
    count_lost_pairs: bool = True,
    cache: Optional[FingerprintCache] = None,
    prewarm: bool = False,
    workers: Optional[int] = None,
) -> PartitionedMergeReport:
    """Merge within each partition separately; summarize the whole module.

    With ``count_lost_pairs`` a global MinHash index (the "summary") is
    consulted first to count how many functions' best global partner lives
    in another partition — the opportunity a ThinLTO integration would need
    to import across partition boundaries.

    With ``prewarm`` (or an explicit *cache*) all defined functions are
    fingerprinted up front in one batched pass — fanned out over ``workers``
    processes for large modules — into a shared content-addressed
    :class:`FingerprintCache`.  The summary ranker and every per-partition
    ranker the factory produces then hit the cache instead of recomputing,
    so the module is fingerprinted once instead of once per partition pass.
    Prewarming uses the factory ranker's static MinHash config; adaptive
    rankers derive per-partition configs, for which prewarmed entries are
    simply never consulted (correct, just not accelerated).
    """
    from ..analysis.size import module_size

    report = PartitionedMergeReport(partitions=partitions)
    report.size_before = module_size(module)

    groups = partition_functions(module, partitions)

    if prewarm and cache is None:
        cache = FingerprintCache()
    if cache is not None and prewarm:
        probe = ranker_factory()
        if isinstance(probe, MinHashLSHRanker) and not probe.adaptive:
            prewarm_config = probe._requested_config or MinHashConfig()
            t0 = time.perf_counter()
            minhash_module(
                module.defined_functions(),
                prewarm_config,
                probe.encoding,
                cache=cache,
                workers=workers,
            )
            report.prewarm_time = time.perf_counter() - t0

    if count_lost_pairs and partitions > 1:
        partition_of: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for func in group:
                partition_of[id(func)] = index
        summary: Ranker = ranker_factory()
        if cache is not None:
            _adopt_cache(summary, cache)
        summary.preprocess(module.defined_functions())
        for func in module.defined_functions():
            match = summary.best_match(func)
            if match is not None and partition_of.get(id(match.function)) != partition_of.get(
                id(func)
            ):
                report.cross_partition_candidates += 1

    # One alignment engine across every per-partition pass: block
    # encodings and cached alignment decisions survive partition
    # boundaries (same-content blocks recur across partitions), so later
    # partitions start warm.
    engine = (
        BatchAlignmentEngine(strategy=config.alignment)
        if config.batch_alignment
        else None
    )
    for group in groups:
        ranker = ranker_factory()
        if cache is not None:
            _adopt_cache(ranker, cache)
        pass_ = FunctionMergingPass(ranker, config, alignment_engine=engine)
        report.reports.append(pass_.run(module, functions=group))

    report.size_after = module_size(module)
    if cache is not None:
        report.cache_stats = cache.stats.to_dict()
    if engine is not None:
        report.align_cache_stats = engine.cache.stats.to_dict()
    return report


# ---------------------------------------------------------------------------
# Parallel partition sweeps
# ---------------------------------------------------------------------------


@dataclass
class SweepPartitionResult:
    """What one partition's merging pass decided (times kept separate).

    ``decisions`` is the attempt log reduced to its decision content —
    ``(function, candidate, similarity, outcome, alignment_ratio,
    saving, merged_name)`` — exactly the fields
    :meth:`SweepReport.digest` serializes, so serial and parallel sweeps
    can be compared bit-for-bit without wall-clock noise.  The trailing
    ``merged_name`` (None for non-merged outcomes) lets the optimistic
    replay map the worker module's merged-function names onto the parent
    module's.
    """

    partition: int
    num_functions: int
    merges: int
    size_before: int
    size_after: int
    outcome_counts: Dict[str, int]
    decisions: List[
        Tuple[str, Optional[str], float, str, float, int, Optional[str]]
    ]
    align_cache_stats: Optional[Dict[str, object]]
    elapsed: float

    @property
    def saving(self) -> int:
        return self.size_before - self.size_after


@dataclass
class SweepReport:
    """Aggregate result of :func:`partition_sweep` (and, when the
    optimistic two-phase driver ran, :func:`optimistic_sweep`)."""

    partitions: int
    results: List[SweepPartitionResult]
    snapshot_time: float = 0.0
    total_time: float = 0.0
    workers: int = 1
    # Populated by optimistic_sweep: the phase-2 cross-partition
    # reconciliation report (None for a plain partition_sweep).
    reconcile: Optional["ReconcileReport"] = None

    @property
    def merges(self) -> int:
        return sum(r.merges for r in self.results)

    @property
    def saving(self) -> int:
        return sum(r.saving for r in self.results)

    def digest(self) -> str:
        """Canonical JSON of every decision the sweep made, times excluded.

        Two sweeps over the same module snapshot with the same
        configuration must produce equal digests regardless of worker
        count — this is the bit-identity contract the parallel path is
        tested against.
        """
        payload = [
            {
                "partition": r.partition,
                "num_functions": r.num_functions,
                "merges": r.merges,
                "size_before": r.size_before,
                "size_after": r.size_after,
                "outcome_counts": r.outcome_counts,
                "decisions": r.decisions,
            }
            for r in self.results
        ]
        if self.reconcile is not None:
            payload.append(
                {
                    "reconcile": {
                        "replay_merges": self.reconcile.replay_merges,
                        "replay_diverged": self.reconcile.replay_diverged,
                        "recovered_pairs": self.reconcile.recovered_pairs,
                        "decisions": self.reconcile.decisions,
                    }
                }
            )
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sweep_worker(payload):
    """Top-level worker (picklable): merge one partition of the snapshot.

    Every worker — and the serial baseline, which calls this same
    function inline — re-parses the module text and re-derives the
    partitioning, so the work a partition sees is a pure function of
    ``(text, partitions, index, ranker_factory, config)``.  That makes
    serial/parallel decision equality hold by construction instead of by
    synchronization.
    """
    text, partitions, index, ranker_factory, config = payload
    t0 = time.perf_counter()
    module = parse_module(text)
    group = partition_functions(module, partitions)[index]
    report = FunctionMergingPass(ranker_factory(), config).run(
        module, functions=group
    )
    return SweepPartitionResult(
        partition=index,
        num_functions=report.num_functions,
        merges=report.merges,
        size_before=report.size_before,
        size_after=report.size_after,
        outcome_counts={k: v for k, v in report.outcome_counts().items() if v},
        decisions=[
            (
                a.function,
                a.candidate,
                a.similarity,
                str(a.outcome),
                a.alignment_ratio,
                a.saving,
                a.merged_name,
            )
            for a in report.attempts
        ],
        align_cache_stats=report.align_cache_stats,
        elapsed=time.perf_counter() - t0,
    )


def partition_sweep(
    module: Module,
    partitions: int,
    ranker_factory: Callable[[], Ranker] = MinHashLSHRanker,
    config: PassConfig = PassConfig(verify=False),
    workers: Optional[int] = None,
) -> SweepReport:
    """Evaluate every partition's merging independently, in parallel.

    Unlike :func:`partitioned_merging` this never mutates *module*: the
    module is snapshotted once as text, and each partition is merged
    inside its own re-parsed copy — partitions are independent by
    construction, so they can run in a process pool.  ``workers=1`` (or
    a single-CPU machine) runs the identical worker inline; results are
    always ordered by partition index, and :meth:`SweepReport.digest`
    is equal between serial and parallel runs.

    *ranker_factory* must be picklable by reference (a module-level
    class or function, e.g. :class:`MinHashLSHRanker`) so it can cross
    the process boundary.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    t0 = time.perf_counter()
    text = print_module(module)
    snapshot_time = time.perf_counter() - t0
    payloads = [
        (text, partitions, index, ranker_factory, config)
        for index in range(partitions)
    ]
    if workers is None:
        workers = min(partitions, os.cpu_count() or 1)
    workers = max(1, min(workers, partitions))
    t0 = time.perf_counter()
    if workers == 1:
        results = [_sweep_worker(p) for p in payloads]
    else:
        # Fork keeps worker start cheap and inherits the warm import
        # state; fall back to the platform default where unavailable.
        if "fork" in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        with ProcessPoolExecutor(max_workers=workers, mp_context=ctx) as pool:
            # executor.map preserves submission order, so results come
            # back sorted by partition index no matter who finished first.
            results = list(pool.map(_sweep_worker, payloads))
    total_time = time.perf_counter() - t0
    return SweepReport(
        partitions=partitions,
        results=results,
        snapshot_time=snapshot_time,
        total_time=total_time,
        workers=workers,
    )


def optimistic_sweep(
    module: Module,
    partitions: int,
    ranker_factory: Callable[[], Ranker] = MinHashLSHRanker,
    config: PassConfig = PassConfig(verify=False),
    workers: Optional[int] = None,
    faults: Optional[FaultInjector] = None,
) -> SweepReport:
    """Two-phase optimistic cross-partition merging (mutates *module*).

    Phase 1 runs :func:`partition_sweep` unchanged — partition-local
    decisions computed in parallel against a text snapshot — and replays
    every committed decision onto the live module through the
    transactional pipeline, *retaining* each commit's undo snapshot.
    Phase 2 re-ranks the surviving fingerprints (unmerged originals,
    merged winners, and the originals optimistic merges consumed)
    through one global ranker from *ranker_factory*, then attempts the
    cross-partition pairs the partition-local sweep had to forgo.  When
    a cross-partition pair conflicts with an already-committed
    optimistic merge, the lower-benefit side is rolled back
    bit-identically and the better global pair wins (see
    :mod:`repro.merge.reconcile`).

    Decisions are deterministic across worker counts: phase 1 is
    serial≡parallel by construction and both the replay and the
    reconciliation are serial walks in canonical order.  The returned
    report is the phase-1 :class:`SweepReport` with
    :attr:`SweepReport.reconcile` filled in; *faults* (a ``reconcile``
    stage injector) is threaded into every phase-2 attempt, which
    contains the failure per pair like any pipeline fault.
    """
    partition_of: Dict[str, int] = {}
    for index, group in enumerate(partition_functions(module, partitions)):
        for func in group:
            partition_of[func.name] = index
    report = partition_sweep(
        module, partitions, ranker_factory, config, workers=workers
    )
    report.reconcile = run_optimistic_phases(
        module,
        report.results,
        partitions,
        partition_of,
        ranker_factory,
        config,
        faults=faults,
    )
    return report
