"""Partitioned (ThinLTO-style) function merging.

Paper Section VI (future work): "we envisage further improvements that can
be achieved by integrating function merging to a summary-based link-time
optimization framework, such as ThinLTO in LLVM".

ThinLTO never materializes the whole program in one module: each partition
is optimized separately, guided by cheap global *summaries*.  We model the
consequence for function merging: candidate pairs can only be merged when
both functions live in the same partition, so cross-partition sibling pairs
are lost.  The partitioned pass quantifies that cost — and, because MinHash
fingerprints are exactly the kind of summary ThinLTO could distribute, the
report also counts how many of the lost pairs a summary index would have
discovered (the opportunity F3M's fingerprints make recoverable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..fingerprint.fnv import fnv1a_32
from ..ir.function import Function
from ..ir.module import Module
from ..search.pairing import MinHashLSHRanker, Ranker
from .pass_ import FunctionMergingPass, PassConfig
from .report import MergeReport

__all__ = ["PartitionedMergeReport", "partition_functions", "partitioned_merging"]


def partition_functions(module: Module, partitions: int) -> List[List[Function]]:
    """Deterministically split defined functions into *partitions* groups.

    Assignment hashes the function name, mimicking how source files (and
    thus their functions) land in different ThinLTO partitions regardless
    of similarity.
    """
    if partitions <= 0:
        raise ValueError("partitions must be positive")
    groups: List[List[Function]] = [[] for _ in range(partitions)]
    for func in module.defined_functions():
        groups[fnv1a_32(func.name.encode("utf-8")) % partitions].append(func)
    return groups


@dataclass
class PartitionedMergeReport:
    partitions: int = 0
    reports: List[MergeReport] = field(default_factory=list)
    size_before: int = 0
    size_after: int = 0
    cross_partition_candidates: int = 0

    @property
    def merges(self) -> int:
        return sum(r.merges for r in self.reports)

    @property
    def size_reduction(self) -> float:
        if self.size_before == 0:
            return 0.0
        return 1.0 - self.size_after / self.size_before

    @property
    def total_time(self) -> float:
        return sum(r.total_time for r in self.reports)


def partitioned_merging(
    module: Module,
    partitions: int,
    ranker_factory: Callable[[], Ranker] = MinHashLSHRanker,
    config: PassConfig = PassConfig(verify=False),
    count_lost_pairs: bool = True,
) -> PartitionedMergeReport:
    """Merge within each partition separately; summarize the whole module.

    With ``count_lost_pairs`` a global MinHash index (the "summary") is
    consulted first to count how many functions' best global partner lives
    in another partition — the opportunity a ThinLTO integration would need
    to import across partition boundaries.
    """
    from ..analysis.size import module_size

    report = PartitionedMergeReport(partitions=partitions)
    report.size_before = module_size(module)

    groups = partition_functions(module, partitions)

    if count_lost_pairs and partitions > 1:
        partition_of: Dict[int, int] = {}
        for index, group in enumerate(groups):
            for func in group:
                partition_of[id(func)] = index
        summary: Ranker = ranker_factory()
        summary.preprocess(module.defined_functions())
        for func in module.defined_functions():
            match = summary.best_match(func)
            if match is not None and partition_of.get(id(match.function)) != partition_of.get(
                id(func)
            ):
                report.cross_partition_candidates += 1

    for group in groups:
        pass_ = FunctionMergingPass(ranker_factory(), config)
        report.reports.append(pass_.run(module, functions=group))

    report.size_after = module_size(module)
    return report
