"""Profitability model for committed merges.

A merge is profitable when the merged function plus the redirection
machinery (rewritten call sites, thunks for address-taken or external
functions) is smaller than the two original functions.  This mirrors HyFM's
post-codegen size check; F3M changes *which pairs reach this point*, not the
decision itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..alignment.batch import InstructionInterner
from ..alignment.hyfm_blocks import _body
from ..analysis.linearizer import linearize_blocks
from ..analysis.size import _FUNCTION_OVERHEAD, function_size, instruction_size
from ..ir.function import Function
from .merger import MergeResult

__all__ = ["ProfitabilityModel", "MergeBenefit", "ProfitabilityBound"]

# Modelled byte costs of the redirection machinery.
_THUNK_BASE = 12 + 5 + 1  # function overhead + call + ret
_CALLSITE_EXTRA = 1  # passing the extra function-id argument


@dataclass
class MergeBenefit:
    original_size: int
    merged_size: int
    overhead: int

    @property
    def saving(self) -> int:
        return self.original_size - self.merged_size - self.overhead

    @property
    def profitable(self) -> bool:
        return self.saving > 0


class ProfitabilityModel:
    """Size-based accept/reject decision for a completed merge."""

    def __init__(self, callsite_extra: int = _CALLSITE_EXTRA, thunk_base: int = _THUNK_BASE) -> None:
        self.callsite_extra = callsite_extra
        self.thunk_base = thunk_base

    def _redirection_cost(self, func: Function) -> int:
        callers = len(func.callers())
        cost = callers * self.callsite_extra
        if func.address_taken or not func.internal:
            cost += self.thunk_base + len(func.args)  # arg forwarding
        return cost

    def evaluate(self, result: MergeResult) -> MergeBenefit:
        original = function_size(result.function_a) + function_size(result.function_b)
        merged = function_size(result.merged)
        overhead = self._redirection_cost(result.function_a) + self._redirection_cost(
            result.function_b
        )
        return MergeBenefit(original, merged, overhead)


class _FunctionProfile:
    """Memoized per-function inputs to the pre-alignment bound."""

    __slots__ = ("function", "total_size", "code_counts", "code_weights", "body_weight")

    def __init__(self, func: Function, interner: "InstructionInterner") -> None:
        self.function = func  # strong ref: id(func) can't be reused while live
        self.total_size = function_size(func)
        counts: Dict[int, int] = {}
        weights: Dict[int, int] = {}
        body_weight = 0
        for block in linearize_blocks(func):
            for inst in _body(block):
                code = interner.code(inst)
                counts[code] = counts.get(code, 0) + 1
                if code not in weights:
                    weights[code] = instruction_size(inst)
                body_weight += weights[code]
        self.code_counts = counts
        self.code_weights = weights
        self.body_weight = body_weight


class ProfitabilityBound:
    """Sound pre-alignment bound on what merging a pair can achieve.

    The merged function emits every *reachable body* instruction of both
    originals (shared pairs once, split and unmatched-block instructions
    separately), and a shared pair requires ``mergeable``.  Mergeability
    is an equivalence relation, so each body instruction carries a dense
    *mergeability-class code* (the alignment interner's encoding — a
    refinement of its opcode, since mergeable instructions always share
    an opcode).  The multiset intersection of the two functions' code
    frequencies therefore bounds the alignment from above on both axes:

    * ``Σ_code min(cA, cB)`` bounds the number of shared instruction
      pairs any alignment can produce.  When it is zero, alignment is
      guaranteed to match nothing and the pipeline would discard the
      pair — alignment and codegen can be skipped outright.
    * Since the size model prices instructions purely by opcode, every
      instruction with a given code has one weight, and the merged body
      weighs at least ``Σ_code max(cA, cB) · w(code)``; phis,
      terminators and the dispatch machinery the merger adds only
      increase it further.  So

          saving ≤ size(A) + size(B) − overhead − redirection(A)
                   − redirection(B) − Σ_code max(cA, cB)·w(code)

      and a pair whose bound is ≤ 0 can never clear the profitability
      check (``saving > 0``).

    Neither rejection can drop a pair the full pipeline would have
    merged.  The per-function profiles are memoized; the pass
    invalidates functions whose bodies a transaction touched.
    Redirection costs depend on the *current* caller sets, so they are
    recomputed on every query.
    """

    def __init__(
        self,
        model: Optional[ProfitabilityModel] = None,
        interner: Optional["InstructionInterner"] = None,
    ) -> None:
        self.model = model if model is not None else ProfitabilityModel()
        self.interner = interner if interner is not None else InstructionInterner()
        self._profiles: Dict[int, _FunctionProfile] = {}

    def profile(self, func: Function) -> _FunctionProfile:
        prof = self._profiles.get(id(func))
        if prof is None:
            prof = _FunctionProfile(func, self.interner)
            self._profiles[id(func)] = prof
        return prof

    def invalidate(self, func: Function) -> None:
        self._profiles.pop(id(func), None)

    def clear(self) -> None:
        self._profiles.clear()

    def query(self, func_a: Function, func_b: Function) -> Tuple[int, int]:
        """(upper bound on saving, upper bound on shared instruction pairs)."""
        pa = self.profile(func_a)
        pb = self.profile(func_b)
        small, large = (
            (pa, pb) if len(pa.code_counts) <= len(pb.code_counts) else (pb, pa)
        )
        shared_pairs = 0
        shared_weight = 0
        for code, count in small.code_counts.items():
            other = large.code_counts.get(code)
            if other:
                common = count if count < other else other
                shared_pairs += common
                shared_weight += common * small.code_weights[code]
        merged_floor = (
            _FUNCTION_OVERHEAD + pa.body_weight + pb.body_weight - shared_weight
        )
        overhead = self.model._redirection_cost(func_a) + self.model._redirection_cost(
            func_b
        )
        return pa.total_size + pb.total_size - merged_floor - overhead, shared_pairs

    def upper_bound(self, func_a: Function, func_b: Function) -> int:
        return self.query(func_a, func_b)[0]

    def should_skip(self, func_a: Function, func_b: Function) -> bool:
        """True when the pair provably cannot end in a committed merge."""
        bound, shared_pairs = self.query(func_a, func_b)
        return shared_pairs == 0 or bound <= 0
