"""Profitability model for committed merges.

A merge is profitable when the merged function plus the redirection
machinery (rewritten call sites, thunks for address-taken or external
functions) is smaller than the two original functions.  This mirrors HyFM's
post-codegen size check; F3M changes *which pairs reach this point*, not the
decision itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.size import function_size, instruction_size
from ..ir.function import Function
from .merger import MergeResult

__all__ = ["ProfitabilityModel", "MergeBenefit"]

# Modelled byte costs of the redirection machinery.
_THUNK_BASE = 12 + 5 + 1  # function overhead + call + ret
_CALLSITE_EXTRA = 1  # passing the extra function-id argument


@dataclass
class MergeBenefit:
    original_size: int
    merged_size: int
    overhead: int

    @property
    def saving(self) -> int:
        return self.original_size - self.merged_size - self.overhead

    @property
    def profitable(self) -> bool:
        return self.saving > 0


class ProfitabilityModel:
    """Size-based accept/reject decision for a completed merge."""

    def __init__(self, callsite_extra: int = _CALLSITE_EXTRA, thunk_base: int = _THUNK_BASE) -> None:
        self.callsite_extra = callsite_extra
        self.thunk_base = thunk_base

    def _redirection_cost(self, func: Function) -> int:
        callers = len(func.callers())
        cost = callers * self.callsite_extra
        if func.address_taken or not func.internal:
            cost += self.thunk_base + len(func.args)  # arg forwarding
        return cost

    def evaluate(self, result: MergeResult) -> MergeBenefit:
        original = function_size(result.function_a) + function_size(result.function_b)
        merged = function_size(result.merged)
        overhead = self._redirection_cost(result.function_a) + self._redirection_cost(
            result.function_b
        )
        return MergeBenefit(original, merged, overhead)
