"""Phase-2 reconciliation for optimistic cross-partition merging.

``partition_sweep`` parallelizes the attempt stage by keeping partitions
independent, which silently forgoes every pair spanning a partition
boundary.  The Optimistic Global Function Merger idea (Lee/Ren/Hoag,
PAPERS.md) recovers that coverage in two phases:

* **Phase 1 (optimistic, parallel)** — the existing partition-local
  sweeps run in a process pool and their *decisions* (not their module
  mutations) come back to the parent, which replays them onto the live
  module through the ordinary transactional pipeline.  Each replayed
  commit runs inside a :class:`RetainingTransaction` whose ``commit()``
  keeps the pre-merge snapshots instead of dropping them, so phase 2 can
  later undo any optimistic merge bit-identically.

* **Phase 2 (reconcile)** — the surviving fingerprints of every
  partition (unmerged originals, merged winners, and the originals
  consumed by optimistic merges) are re-ranked through one *global* LSH
  index.  Pairs whose members live in different partitions are attempted
  greedily, best-similarity first, through the same gated pipeline
  (bound → align → codegen → verify → static/validate/oracle → commit).
  When a cross-partition pair needs a function an optimistic merge
  already consumed, the conflict is resolved by *benefit*: the
  optimistic merge is rolled back (bodies restored onto the original
  ``Function`` objects, the merged function erased, the function-table
  order reconstructed), the cross-partition merge is attempted, and the
  lower-benefit side loses — if the cross-partition saving does not beat
  the sum of the undone optimistic savings, the cross merge is itself
  undone and the optimistic merges are re-applied, reproducing the
  phase-1 state exactly.

Rolling back an optimistic merge after *later* commits touched the same
functions would clobber those commits, so every commit logs the function
names it captured and an **overlap guard** refuses (deterministically)
to undo a merge whose capture set intersects any later commit's; such
candidates are counted as ``conflicts_skipped`` and the optimistic
merges stand.

Determinism: phase 1's decisions are serial≡parallel by construction
(see ``partition_sweep``), the replay is a serial pure function of those
decisions, and phase 2 ranks and attempts in a canonical order — so two
runs over the same module snapshot produce identical
:meth:`ReconcileReport.decisions` regardless of worker count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..analysis.size import module_size
from ..faults import FaultInjector
from ..ir.clone import clone_function_into
from ..ir.function import Function
from ..ir.module import Module
from ..obs import trace
from ..search.pairing import Match, Ranker, RankingStats
from .pass_ import FunctionMergingPass, PassConfig
from .report import Outcome
from .thunks import thunk_target
from .transaction import MergeTransaction, _FunctionBackup

__all__ = [
    "FixedPairRanker",
    "ReconcileReport",
    "RetainedMerge",
    "RetainingTransaction",
    "run_optimistic_phases",
]


class RetainingTransaction(MergeTransaction):
    """A merge transaction whose commit keeps the undo snapshots.

    ``commit()`` closes the transaction like the base class but moves the
    captured backups (and the baseline function-table order) into
    :attr:`retained` instead of discarding them, so the reconciliation
    pass can undo the committed merge later.  ``rollback()`` is
    inherited unchanged — a failed attempt leaves nothing retained.
    """

    def __init__(self, module: Module) -> None:
        super().__init__(module)
        self.retained: Optional[Dict[int, _FunctionBackup]] = None
        self.retained_order: Optional[List[str]] = None

    def commit(self) -> None:
        self.retained = dict(self._backups)
        self.retained_order = list(self._baseline_order)
        super().commit()


@dataclass
class RetainedMerge:
    """One committed merge whose pre-state is still restorable.

    ``seq`` orders commits; the overlap guard compares capture sets of
    later commits against :attr:`touched_names` before allowing
    :meth:`undo`.  ``saving`` is the modelled byte saving the
    profitability model credited to this merge — the currency conflict
    resolution trades in.
    """

    seq: int
    partition: int
    function_a: str
    function_b: str
    merged_name: str
    saving: int
    backups: Dict[int, _FunctionBackup]
    pre_order: List[str]
    undone: bool = False

    @property
    def touched_names(self) -> Set[str]:
        names = {backup.name for backup in self.backups.values()}
        names.add(self.merged_name)
        return names

    def undo(self, module: Module) -> List[Function]:
        """Restore the module to its pre-merge state; returns the live
        functions whose bodies were restored (for memo invalidation).

        Only safe when no later commit touched :attr:`touched_names` —
        the caller enforces that via the overlap guard.  Restores the
        captured bodies onto the *same* ``Function`` objects, erases the
        merged function this commit created, and rebuilds the
        function-table order as if the merge never ran (functions added
        by later commits keep their positions after the restored ones,
        which is exactly where they would have been appended).
        """
        if self.undone:
            return []
        restored: List[Function] = []
        for backup in self.backups.values():
            func = backup.function
            func.drop_body()
            vmap = {
                id(src): dst for src, dst in zip(backup.body.args, func.args)
            }
            clone_function_into(backup.body, func, vmap)
            func.internal = backup.internal
            func.name = backup.name
            func._name_counter = backup.name_counter
            if module._functions.get(func.name) is not func:
                func.parent = module
                module._functions[func.name] = func
            restored.append(func)
        merged = module.get_function(self.merged_name)
        if merged is not None:
            merged.erase_from_parent()
        pre = set(self.pre_order)
        order = [name for name in self.pre_order if name in module._functions]
        order.extend(
            name
            for name in module._functions
            if name not in pre and name != self.merged_name
        )
        module._functions = {name: module._functions[name] for name in order}
        self.undone = True
        trace.event("reconcile_undo", merged=self.merged_name, saving=self.saving)
        return restored


class FixedPairRanker(Ranker):
    """A ranker that proposes exactly the pair the driver prescribes.

    The replay and reconcile drivers already know which two functions an
    attempt concerns; routing the pair through this ranker lets them
    reuse ``FunctionMergingPass`` — every stage, gate, timing bucket and
    containment path — without a search index.  ``fault_stage`` (set to
    ``"reconcile"`` during phase 2) fires the injector *inside* the
    pass's guarded rank stage, so an injected reconcile fault is
    contained per attempt exactly like any pipeline fault.
    """

    name = "reconcile"

    def __init__(self) -> None:
        self._target: Optional[Match] = None
        self._stats = RankingStats()
        self.fault_stage: Optional[str] = None

    def set(self, other: Function, similarity: float) -> None:
        self._target = Match(other, similarity)

    def preprocess(self, functions: List[Function]) -> None:  # pragma: no cover
        pass

    def insert(self, func: Function) -> None:
        pass

    def best_match(self, func: Function) -> Optional[Match]:
        if self.fault_stage is not None:
            self._fault_hit(self.fault_stage)
        self._stats.queries += 1
        return self._target

    def remove(self, func: Function) -> None:
        pass

    def similarity(self, a: Function, b: Function) -> float:
        return self._target.similarity if self._target else 0.0

    @property
    def stats(self) -> RankingStats:
        return self._stats


@dataclass
class ReconcileReport:
    """What the optimistic replay + reconciliation pass did.

    ``decisions`` is the canonical record — one tuple per phase-2
    attempt, ``(function, candidate, similarity, outcome, action,
    saving)`` — folded into :meth:`SweepReport.digest` so determinism
    across runs and worker counts stays bit-checkable.
    """

    partitions: int
    # Phase-1 replay accounting.
    replay_merges: int = 0
    replay_diverged: int = 0
    # Phase-2 candidate discovery and attempts.
    cross_candidates: int = 0
    attempted: int = 0
    recovered_pairs: int = 0
    recovered_saving: int = 0
    # Conflict resolution against already-committed optimistic merges.
    conflicts_considered: int = 0
    conflicts_resolved: int = 0
    conflicts_skipped: int = 0
    rollbacks: int = 0
    reapplied: int = 0
    reapply_failures: int = 0
    # Module sizes: after phase 1 (the partition-local baseline) and
    # after reconciliation.
    size_phase1: int = 0
    size_after: int = 0
    elapsed: float = 0.0
    decisions: List[Tuple[str, str, float, str, str, int]] = field(
        default_factory=list
    )

    @property
    def recovered_size_delta(self) -> int:
        """Bytes the reconcile pass removed beyond the phase-1 result."""
        return self.size_phase1 - self.size_after


class _OptimisticDriver:
    """Shared state of the replay + reconcile phases on one module."""

    def __init__(
        self,
        module: Module,
        config: PassConfig,
        faults: Optional[FaultInjector],
    ) -> None:
        self.module = module
        self.config = config
        self.ranker = FixedPairRanker()
        self._txns: List[RetainingTransaction] = []

        def factory(mod: Module) -> RetainingTransaction:
            txn = RetainingTransaction(mod)
            self._txns.append(txn)
            return txn

        self.pass_ = FunctionMergingPass(
            self.ranker,
            config,
            faults=faults,
            transaction_factory=factory,
        )
        self.seq = 0
        self.consumed_ids: Set[int] = set()
        # Commit log for the overlap guard: (seq, names touched).
        self.log: List[Tuple[int, Set[str]]] = []

    def attempt(self, func: Function, other: Function, similarity: float):
        """One transactional pipeline trip for the prescribed pair.

        Returns ``(record, retained_or_None)``; a retained entry means
        the attempt committed and is undoable.
        """
        self.ranker.set(other, similarity)
        self._txns.clear()
        record, _merged = self.pass_._attempt(
            self.module, func, self.consumed_ids, threshold=0.0
        )
        retained = None
        if record.outcome == Outcome.MERGED:
            txn = self._txns[-1]
            self.seq += 1
            retained = RetainedMerge(
                seq=self.seq,
                partition=-1,
                function_a=func.name,
                function_b=other.name,
                merged_name=record.merged_name,
                saving=record.saving,
                backups=txn.retained or {},
                pre_order=txn.retained_order or [],
            )
            self.log.append((retained.seq, retained.touched_names))
        return record, retained

    def undo_is_safe(self, retained: RetainedMerge) -> bool:
        touched = retained.touched_names
        return not any(
            seq > retained.seq and touched & names for seq, names in self.log
        )

    def undo(self, retained: RetainedMerge) -> None:
        restored = retained.undo(self.module)
        self.pass_._invalidate(restored)


def _replay_phase(
    driver: _OptimisticDriver,
    sweep_results,
    report: ReconcileReport,
) -> Tuple[List[RetainedMerge], Dict[str, int]]:
    """Apply each partition's committed decisions to the parent module.

    Worker-side names are mapped to parent-side functions through
    ``name_map`` as merged functions are created, so remerge chains
    (a merged function consumed by a later merge in the same partition)
    replay correctly even when ``unique_name`` suffixes diverge.
    """
    retained_merges: List[RetainedMerge] = []
    name_map: Dict[str, str] = {}
    merged_partition: Dict[str, int] = {}
    for result in sweep_results:
        for decision in result.decisions:
            function, candidate, similarity, outcome = decision[:4]
            merged_name = decision[6] if len(decision) > 6 else None
            if outcome != str(Outcome.MERGED) or candidate is None:
                continue
            func = driver.module.get_function(name_map.get(function, function))
            other = driver.module.get_function(name_map.get(candidate, candidate))
            if func is None or other is None:
                report.replay_diverged += 1
                continue
            record, retained = driver.attempt(func, other, similarity)
            if retained is None:
                report.replay_diverged += 1
                continue
            retained.partition = result.partition
            retained_merges.append(retained)
            report.replay_merges += 1
            merged_partition[retained.merged_name] = result.partition
            if merged_name is not None:
                name_map[merged_name] = retained.merged_name
    return retained_merges, merged_partition


@dataclass
class _PoolEntry:
    """One fingerprintable survivor in the phase-2 global ranking."""

    name: str  # parent-module name the attempt resolves at runtime
    partition: int
    proxy: Function  # live function, or a detached pre-merge backup body
    retained: Optional[RetainedMerge] = None  # set for consumed originals


def _survivor_pool(
    module: Module,
    config: PassConfig,
    partition_of: Dict[str, int],
    merged_partition: Dict[str, int],
    retained_merges: List[RetainedMerge],
) -> List[_PoolEntry]:
    """Collect the fingerprints phase 2 re-ranks globally.

    Three populations: unmerged originals still live in the module,
    merged winners (ranked by their merged bodies), and the originals
    each optimistic merge consumed (ranked by their *pre-merge* backup
    bodies, so a better cross-partition partner can still claim them).
    """
    pool: List[_PoolEntry] = []
    for func in module.defined_functions():
        if func.num_instructions < config.min_instructions:
            continue
        if thunk_target(func) is not None:
            continue
        partition = merged_partition.get(func.name, partition_of.get(func.name))
        if partition is None:
            continue
        pool.append(_PoolEntry(func.name, partition, func))
    for retained in retained_merges:
        by_name = {b.name: b for b in retained.backups.values()}
        for original in (retained.function_a, retained.function_b):
            backup = by_name.get(original)
            if backup is None:  # pragma: no cover - capture always includes both
                continue
            if backup.body.num_instructions < config.min_instructions:
                continue
            pool.append(
                _PoolEntry(original, retained.partition, backup.body, retained)
            )
    return pool


def _rank_cross_candidates(
    pool: List[_PoolEntry],
    ranker_factory: Callable[[], Ranker],
    config: PassConfig,
) -> List[Tuple[float, _PoolEntry, _PoolEntry]]:
    """Globally re-rank the pool; keep pairs spanning partitions.

    One query per pool entry through the factory ranker (the same
    LSH/sharded machinery the pass uses), deduplicated per unordered
    name pair, ordered best-similarity-first with a name tiebreak so the
    greedy phase is deterministic.
    """
    ranker = ranker_factory()
    ranker.preprocess([entry.proxy for entry in pool])
    threshold = max(config.threshold, getattr(ranker, "threshold", 0.0))
    by_proxy_id = {id(entry.proxy): entry for entry in pool}
    seen: Set[Tuple[str, str]] = set()
    candidates: List[Tuple[float, _PoolEntry, _PoolEntry]] = []
    for entry in pool:
        match = ranker.best_match(entry.proxy)
        if match is None or match.similarity < threshold:
            continue
        other = by_proxy_id.get(id(match.function))
        if other is None or other.partition == entry.partition:
            continue
        if other.name == entry.name:
            continue
        key = (
            (entry.name, other.name)
            if entry.name < other.name
            else (other.name, entry.name)
        )
        if key in seen:
            continue
        seen.add(key)
        candidates.append((match.similarity, entry, other))
    candidates.sort(key=lambda c: (-c[0], c[1].name, c[2].name))
    return candidates


def _reconcile_phase(
    driver: _OptimisticDriver,
    pool_candidates: List[Tuple[float, _PoolEntry, _PoolEntry]],
    report: ReconcileReport,
) -> None:
    """Greedy cross-partition attempts with benefit-ranked conflicts."""
    module = driver.module
    consumed_names: Set[str] = set()
    for similarity, entry_a, entry_b in pool_candidates:
        if entry_a.name in consumed_names or entry_b.name in consumed_names:
            continue
        # An entry whose optimistic merge a *previous* candidate already
        # rolled back is live now; drop the stale conflict edge.
        conflicts = [
            entry.retained
            for entry in (entry_a, entry_b)
            if entry.retained is not None and not entry.retained.undone
        ]
        if any(c.merged_name in consumed_names for c in conflicts):
            continue
        report.attempted += 1
        if conflicts:
            report.conflicts_considered += 1
            if not all(driver.undo_is_safe(c) for c in conflicts):
                report.conflicts_skipped += 1
                report.decisions.append(
                    (entry_a.name, entry_b.name, similarity, "skipped", "overlap", 0)
                )
                continue
            local_saving = sum(c.saving for c in conflicts)
            for conflict in sorted(conflicts, key=lambda c: -c.seq):
                driver.undo(conflict)
                report.rollbacks += 1
        func = module.get_function(entry_a.name)
        other = module.get_function(entry_b.name)
        if func is None or other is None:  # pragma: no cover - defensive
            record, retained = None, None
        else:
            record, retained = driver.attempt(func, other, similarity)
        if not conflicts:
            if retained is not None:
                report.recovered_pairs += 1
                report.recovered_saving += retained.saving
                consumed_names.update((entry_a.name, entry_b.name))
                report.decisions.append(
                    (
                        entry_a.name,
                        entry_b.name,
                        similarity,
                        "merged",
                        "recovered",
                        retained.saving,
                    )
                )
            else:
                outcome = str(record.outcome) if record is not None else "missing"
                report.decisions.append(
                    (entry_a.name, entry_b.name, similarity, outcome, "rejected", 0)
                )
            continue
        # Conflict resolution: the cross-partition merge must beat the
        # sum of the optimistic merges it displaced, else phase 1 wins.
        if retained is not None and retained.saving > local_saving:
            report.conflicts_resolved += 1
            report.recovered_pairs += 1
            report.recovered_saving += retained.saving - local_saving
            consumed_names.update((entry_a.name, entry_b.name))
            for conflict in conflicts:
                consumed_names.add(conflict.merged_name)
            report.decisions.append(
                (
                    entry_a.name,
                    entry_b.name,
                    similarity,
                    "merged",
                    "conflict_won",
                    retained.saving - local_saving,
                )
            )
            continue
        # The optimistic merges keep their win: undo the cross merge (if
        # it committed) and re-apply phase 1's decisions, reproducing the
        # phase-1 bodies exactly (same inputs, same deterministic merge).
        # Re-applies are restorative, not cross-partition attempts, so
        # the ``reconcile`` fault point is off for them — an injected
        # fault must leave the module at the phase-1 result, which
        # requires the re-apply after a faulted conflict attempt to run.
        if retained is not None:
            report.rollbacks += 1
            driver.undo(retained)
        driver.ranker.fault_stage = None
        for conflict in sorted(conflicts, key=lambda c: c.seq):
            fa = module.get_function(conflict.function_a)
            fb = module.get_function(conflict.function_b)
            redo, redone = (None, None)
            if fa is not None and fb is not None:
                redo, redone = driver.attempt(fa, fb, similarity)
            if redone is None:  # pragma: no cover - deterministic re-merge
                report.reapply_failures += 1
                continue
            redone.partition = conflict.partition
            conflict.backups = redone.backups
            conflict.pre_order = redone.pre_order
            conflict.seq = redone.seq
            conflict.merged_name = redone.merged_name
            conflict.saving = redone.saving
            conflict.undone = False
            report.reapplied += 1
        driver.ranker.fault_stage = "reconcile"
        outcome = str(record.outcome) if record is not None else "missing"
        report.decisions.append(
            (entry_a.name, entry_b.name, similarity, outcome, "conflict_kept", 0)
        )


def run_optimistic_phases(
    module: Module,
    sweep_results,
    partitions: int,
    partition_of: Dict[str, int],
    ranker_factory: Callable[[], Ranker],
    config: PassConfig,
    faults: Optional[FaultInjector] = None,
) -> ReconcileReport:
    """Replay phase-1 decisions onto *module*, then reconcile across
    partitions.  Mutates *module*; returns the combined report."""
    report = ReconcileReport(partitions=partitions)
    t0 = time.perf_counter()
    driver = _OptimisticDriver(module, config, faults)
    with trace.span("replay", partitions=partitions):
        retained_merges, merged_partition = _replay_phase(
            driver, sweep_results, report
        )
    report.size_phase1 = module_size(module)
    with trace.span("reconcile", merges=len(retained_merges)):
        pool = _survivor_pool(
            module, config, partition_of, merged_partition, retained_merges
        )
        driver.ranker.fault_stage = "reconcile"
        candidates = _rank_cross_candidates(pool, ranker_factory, config)
        report.cross_candidates = len(candidates)
        _reconcile_phase(driver, candidates, report)
    report.size_after = module_size(module)
    report.elapsed = time.perf_counter() - t0
    return report
