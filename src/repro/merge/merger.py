"""Merged-function code generation (the HyFM/SalSSA backend reused by F3M).

Given two functions and a block-level alignment, emit one merged function:

* a fresh ``i1`` *function identifier* parameter selects between the two
  original behaviours (0 → first function, 1 → second);
* parameters of the originals are merged by type so compatible parameters
  share one slot;
* shared (aligned) instructions are emitted once, with ``select`` resolving
  operands that differ between the two originals;
* private instruction runs are placed in blocks guarded by a conditional
  branch on the function identifier;
* terminators merge when both functions branch to correspondingly-paired
  blocks, otherwise each function keeps its own guarded terminator.

Dominance violations introduced by sharing are fixed afterwards by
:mod:`repro.merge.ssa_repair`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..alignment.model import (
    BlockAlignment,
    FunctionAlignment,
    SharedSegment,
    SplitSegment,
)
from ..ir.basicblock import BasicBlock
from ..ir.clone import clone_instruction
from ..ir.function import Function
from ..ir.instructions import (
    Branch,
    Instruction,
    Invoke,
    Opcode,
    Phi,
    Ret,
    Select,
    Switch,
    Unreachable,
)
from ..ir.module import Module
from ..ir.types import FunctionType, I1, Type
from ..ir.values import Argument, Constant, ConstantFloat, ConstantInt, ConstantNull, UndefValue, Value
from .errors import MergeError
from .ssa_repair import repair_ssa

__all__ = ["MergeOptions", "MergeResult", "merge_functions"]


@dataclass(frozen=True)
class MergeOptions:
    """Code-generation knobs.

    ``legacy_bugs`` re-enables the two HyFM SSA-repair bugs documented in
    paper Section III-E (for the bug-effect experiment); the default is the
    fixed behaviour.
    """

    legacy_bugs: bool = False
    max_repair_rounds: int = 16


@dataclass
class MergeResult:
    """The merged function plus the bookkeeping thunk generation needs."""

    merged: Function
    function_a: Function
    function_b: Function
    # Original argument index -> merged argument index (incl. the id at 0).
    param_map_a: List[int] = field(default_factory=list)
    param_map_b: List[int] = field(default_factory=list)
    num_selects: int = 0
    num_shared: int = 0
    num_private: int = 0
    repairs: int = 0


def _merge_parameters(
    func_a: Function, func_b: Function
) -> Tuple[List[Type], List[int], List[int]]:
    """Merge the two parameter lists by type; slot 0 is the function id."""
    types: List[Type] = [I1]
    map_a: List[int] = []
    map_b: List[int] = []
    for arg in func_a.args:
        map_a.append(len(types))
        types.append(arg.type)
    taken = [False] * len(types)
    for arg in func_b.args:
        slot = -1
        for i in range(1, len(types)):
            if not taken[i] and types[i] is arg.type:
                slot = i
                break
        if slot < 0:
            slot = len(types)
            types.append(arg.type)
            taken.append(False)
        taken[slot] = True
        map_b.append(slot)
    return types, map_a, map_b


def _constants_equal(a: Value, b: Value) -> bool:
    if a is b:
        return True
    if type(a) is not type(b) or a.type is not b.type:
        return False
    if isinstance(a, ConstantInt):
        return a.value == b.value  # type: ignore[union-attr]
    if isinstance(a, ConstantFloat):
        return a.value == b.value or (a.value != a.value and b.value != b.value)  # type: ignore[union-attr]
    if isinstance(a, (ConstantNull, UndefValue)):
        return True
    return False


@dataclass
class _Pending:
    """An emitted instruction whose operands still point at placeholders."""

    inst: Instruction
    source_a: Optional[Instruction]
    source_b: Optional[Instruction]


class _Merger:
    """One merge operation; see module docstring for the overall scheme."""

    def __init__(
        self,
        alignment: FunctionAlignment,
        module: Module,
        name: Optional[str],
        options: MergeOptions,
    ) -> None:
        self.alignment = alignment
        self.func_a: Function = alignment.function_a  # type: ignore[assignment]
        self.func_b: Function = alignment.function_b  # type: ignore[assignment]
        self.module = module
        self.options = options
        if self.func_a.return_type is not self.func_b.return_type:
            raise MergeError(
                f"return type mismatch: {self.func_a.return_type} vs "
                f"{self.func_b.return_type}"
            )
        if self.func_a.is_declaration or self.func_b.is_declaration:
            raise MergeError("cannot merge declarations")

        types, self.map_a, self.map_b = _merge_parameters(self.func_a, self.func_b)
        merged_name = name or module.unique_name(
            f"merged.{self.func_a.name}.{self.func_b.name}"
        )
        self.merged = Function(
            FunctionType(self.func_a.return_type, types), merged_name, internal=True
        )
        self.fid: Argument = self.merged.args[0]
        self.fid.name = "fid"
        # Value maps: original value id -> merged value.
        self.vmap_a: Dict[int, Value] = {}
        self.vmap_b: Dict[int, Value] = {}
        for arg, slot in zip(self.func_a.args, self.map_a):
            self.vmap_a[id(arg)] = self.merged.args[slot]
        for arg, slot in zip(self.func_b.args, self.map_b):
            self.vmap_b[id(arg)] = self.merged.args[slot]
        # Block maps: entry point and terminator-holder of each original block.
        self.entry_a: Dict[int, BasicBlock] = {}
        self.entry_b: Dict[int, BasicBlock] = {}
        self.exit_a: Dict[int, BasicBlock] = {}
        self.exit_b: Dict[int, BasicBlock] = {}
        self.pending: List[_Pending] = []
        self.phi_shells: List[Tuple[Phi, Phi, str]] = []  # (new, old, side)
        self._deferred_terms: List[
            Tuple[BlockAlignment, int, BasicBlock, Instruction, Instruction]
        ] = []
        self.result = MergeResult(self.merged, self.func_a, self.func_b)

    # -- small helpers -----------------------------------------------------------
    def _new_block(self, name: str) -> BasicBlock:
        return BasicBlock(name, self.merged)

    def _placeholder_clone(
        self, inst: Instruction, side: str, partner: Optional[Instruction] = None
    ) -> Instruction:
        """Clone *inst* with every operand replaced by a typed placeholder."""
        vmap: Dict[int, Value] = {}
        for op in inst.operands:
            if isinstance(op, BasicBlock):
                # Blocks are patched later; point at a detached dummy.
                vmap[id(op)] = self._dummy_block(op)
            elif isinstance(op, Constant) or isinstance(op, Function):
                vmap[id(op)] = op
            else:
                vmap[id(op)] = UndefValue(op.type)
        new = clone_instruction(inst, vmap)
        if side == "a":
            self.vmap_a[id(inst)] = new
            if partner is not None:
                self.vmap_b[id(partner)] = new
        else:
            self.vmap_b[id(inst)] = new
        self.pending.append(
            _Pending(new, inst if side == "a" else partner, partner if side == "a" else inst)
        )
        return new

    _dummies: Dict[int, BasicBlock]

    def _dummy_block(self, original: BasicBlock) -> BasicBlock:
        if not hasattr(self, "_dummies"):
            self._dummies = {}
        dummy = self._dummies.get(id(original))
        if dummy is None:
            dummy = BasicBlock(f"dummy.{original.name}")
            self._dummies[id(original)] = dummy
        return dummy

    def _resolve(self, value: Value, side: str) -> Value:
        vmap = self.vmap_a if side == "a" else self.vmap_b
        mapped = vmap.get(id(value))
        if mapped is not None:
            return mapped
        if isinstance(value, (Constant, Function)):
            return value
        raise MergeError(
            f"unmapped value %{value.name} from @{self.func_a.name if side == 'a' else self.func_b.name}"
        )

    def _entry_of(self, block: BasicBlock, side: str) -> BasicBlock:
        emap = self.entry_a if side == "a" else self.entry_b
        target = emap.get(id(block))
        if target is None:
            raise MergeError(f"no merged entry for block %{block.name}")
        return target

    # -- phase 1: block scaffolding ----------------------------------------------
    def build(self) -> MergeResult:
        dispatch = self._new_block("entry")
        self._build_pairs()
        self._build_unmatched(self.alignment.unmatched_a, "a")
        self._build_unmatched(self.alignment.unmatched_b, "b")
        self._flush_terminators()
        self._emit_dispatch(dispatch)
        self._patch_operands()
        self._patch_phis()
        self._drop_dummies()
        self.merged.uniquify_names()
        self.module.add_function(self.merged)
        try:
            self.result.repairs = repair_ssa(
                self.merged,
                legacy_bugs=self.options.legacy_bugs,
                max_rounds=self.options.max_repair_rounds,
            )
        except MergeError:
            self.merged.erase_from_parent()
            raise
        self.result.param_map_a = self.map_a
        self.result.param_map_b = self.map_b
        return self.result

    def _emit_dispatch(self, dispatch: BasicBlock) -> None:
        entry_a = self._entry_of(self.func_a.entry, "a")
        entry_b = self._entry_of(self.func_b.entry, "b")
        if entry_a is entry_b:
            dispatch.append(Branch(entry_a))
        else:
            dispatch.append(Branch(self.fid, entry_b, entry_a))
        # The dispatch block must be the function entry.
        self.merged.blocks.remove(dispatch)
        self.merged.blocks.insert(0, dispatch)

    def _build_pairs(self) -> None:
        for index, pair in enumerate(self.alignment.block_pairs):
            self._build_pair(pair, index)

    def _build_pair(self, pair: BlockAlignment, index: int) -> None:
        head = self._new_block(f"p{index}.head")
        self.entry_a[id(pair.block_a)] = head
        self.entry_b[id(pair.block_b)] = head
        # Phi shells for both originals live at the head.
        for side, block in (("a", pair.block_a), ("b", pair.block_b)):
            vmap = self.vmap_a if side == "a" else self.vmap_b
            for phi in block.phis():
                shell = Phi(phi.type)
                shell.name = phi.name
                head.append(shell)
                vmap[id(phi)] = shell
                self.phi_shells.append((shell, phi, side))

        current = head
        split_n = 0
        for segment in pair.segments:
            if isinstance(segment, SharedSegment):
                for a, b in segment.pairs:
                    current.append(self._placeholder_clone(a, "a", partner=b))
                    self.result.num_shared += 1
            elif isinstance(segment, SplitSegment):
                current = self._build_split(pair, index, split_n, current, segment)
                split_n += 1
        self._build_terminators(pair, index, current)

    def _build_split(
        self,
        pair: BlockAlignment,
        index: int,
        split_n: int,
        current: BasicBlock,
        segment: SplitSegment,
    ) -> BasicBlock:
        """Emit a guarded diamond for one split segment; returns the join."""
        join = self._new_block(f"p{index}.s{split_n}.join")
        left: Optional[BasicBlock] = None
        right: Optional[BasicBlock] = None
        if segment.left:
            left = self._new_block(f"p{index}.s{split_n}.a")
            for inst in segment.left:
                left.append(self._placeholder_clone(inst, "a"))
                self.result.num_private += 1
            left.append(Branch(join))
        if segment.right:
            right = self._new_block(f"p{index}.s{split_n}.b")
            for inst in segment.right:
                right.append(self._placeholder_clone(inst, "b"))
                self.result.num_private += 1
            right.append(Branch(join))
        if left is not None and right is not None:
            current.append(Branch(self.fid, right, left))
        elif left is not None:
            current.append(Branch(self.fid, join, left))
        elif right is not None:
            current.append(Branch(self.fid, right, join))
        else:  # both empty: degenerate, keep straight-line
            current.append(Branch(join))
        return join

    # -- terminators ----------------------------------------------------------------
    def _terminators_shareable(self, term_a: Instruction, term_b: Instruction) -> bool:
        if term_a.opcode != term_b.opcode:
            return False
        if isinstance(term_a, Ret):
            return True
        if isinstance(term_a, Unreachable):
            return True
        if isinstance(term_a, Branch):
            if term_a.is_conditional != term_b.is_conditional:  # type: ignore[union-attr]
                return False
        if isinstance(term_a, Switch):
            cases_a = term_a.cases
            cases_b = term_b.cases  # type: ignore[union-attr]
            if len(cases_a) != len(cases_b):
                return False
            if term_a.value.type is not term_b.value.type:  # type: ignore[union-attr]
                return False
            for (const_a, _), (const_b, _) in zip(cases_a, cases_b):
                if const_a.value != const_b.value:
                    return False
        if isinstance(term_a, Invoke):
            if term_a.type is not term_b.type:
                return False
            if term_a.num_operands != term_b.num_operands:
                return False
            for op_a, op_b in zip(term_a.operands, term_b.operands):
                if not isinstance(op_a, BasicBlock) and op_a.type is not op_b.type:
                    return False
        # Successor slots must lead to the same merged blocks.
        succ_a = term_a.successors()
        succ_b = term_b.successors()
        if len(succ_a) != len(succ_b):
            return False
        for sa, sb in zip(succ_a, succ_b):
            ea = self.entry_a.get(id(sa))
            eb = self.entry_b.get(id(sb))
            if ea is None or eb is None or ea is not eb:
                return False
        return True

    def _build_terminators(self, pair: BlockAlignment, index: int, current: BasicBlock) -> None:
        term_a = pair.block_a.terminator
        term_b = pair.block_b.terminator
        if term_a is None or term_b is None:
            raise MergeError("cannot merge unterminated blocks")
        # Sharing needs both successor maps populated, which happens lazily:
        # successors' entries exist only after all pairs/unmatched blocks are
        # scaffolded.  Terminator emission is therefore deferred.
        self._deferred_terms.append((pair, index, current, term_a, term_b))

    def _flush_terminators(self) -> None:
        for pair, index, current, term_a, term_b in self._deferred_terms:
            if self._terminators_shareable(term_a, term_b):
                merged_term = self._placeholder_clone(term_a, "a", partner=term_b)
                current.append(merged_term)
                self.exit_a[id(pair.block_a)] = current
                self.exit_b[id(pair.block_b)] = current
            else:
                blk_a = self._new_block(f"p{index}.term.a")
                blk_b = self._new_block(f"p{index}.term.b")
                blk_a.append(self._placeholder_clone(term_a, "a"))
                blk_b.append(self._placeholder_clone(term_b, "b"))
                current.append(Branch(self.fid, blk_b, blk_a))
                self.exit_a[id(pair.block_a)] = blk_a
                self.exit_b[id(pair.block_b)] = blk_b

    # -- unmatched blocks -------------------------------------------------------------
    def _build_unmatched(self, blocks: List[BasicBlock], side: str) -> None:
        emap = self.entry_a if side == "a" else self.entry_b
        xmap = self.exit_a if side == "a" else self.exit_b
        vmap = self.vmap_a if side == "a" else self.vmap_b
        for block in blocks:
            clone = self._new_block(f"{side}.{block.name}")
            emap[id(block)] = clone
            for phi in block.phis():
                shell = Phi(phi.type)
                shell.name = phi.name
                clone.append(shell)
                vmap[id(phi)] = shell
                self.phi_shells.append((shell, phi, side))
            for inst in block.instructions[block.first_non_phi_index():]:
                if inst.is_terminator:
                    break
                clone.append(self._placeholder_clone(inst, side))
                self.result.num_private += 1
            term = block.terminator
            if term is None:
                raise MergeError(f"unterminated block %{block.name}")
            clone.append(self._placeholder_clone(term, side))
            xmap[id(block)] = clone

    # -- phase 2: operand patching -----------------------------------------------------
    def _patch_operands(self) -> None:
        for pend in self.pending:
            inst = pend.inst
            if pend.source_a is not None and pend.source_b is not None:
                self._patch_shared(inst, pend.source_a, pend.source_b)
            elif pend.source_a is not None:
                self._patch_private(inst, pend.source_a, "a")
            else:
                assert pend.source_b is not None
                self._patch_private(inst, pend.source_b, "b")

    def _patch_shared(self, inst: Instruction, src_a: Instruction, src_b: Instruction) -> None:
        for idx in range(inst.num_operands):
            op_a = src_a.operand(idx)
            op_b = src_b.operand(idx)
            if isinstance(op_a, BasicBlock):
                target_a = self._entry_of(op_a, "a")
                target_b = self._entry_of(op_b, "b")  # type: ignore[arg-type]
                if target_a is not target_b:
                    raise MergeError("shared terminator with diverging targets")
                inst.set_operand(idx, target_a)
                continue
            val_a = self._resolve(op_a, "a")
            val_b = self._resolve(op_b, "b")
            if val_a is val_b or _constants_equal(val_a, val_b):
                inst.set_operand(idx, val_a)
            else:
                select = Select(self.fid, val_b, val_a)
                select.name = self.merged.next_name("sel")
                block = inst.parent
                assert block is not None
                block.insert_before(inst, select)
                inst.set_operand(idx, select)
                self.result.num_selects += 1

    def _patch_private(self, inst: Instruction, src: Instruction, side: str) -> None:
        for idx in range(inst.num_operands):
            op = src.operand(idx)
            if isinstance(op, BasicBlock):
                inst.set_operand(idx, self._entry_of(op, side))
            else:
                inst.set_operand(idx, self._resolve(op, side))

    # -- phase 3: phi completion -----------------------------------------------------
    def _patch_phis(self) -> None:
        for shell, original, side in self.phi_shells:
            vmap = self.vmap_a if side == "a" else self.vmap_b
            xmap = self.exit_a if side == "a" else self.exit_b
            for value, pred in original.incoming:
                exit_block = xmap.get(id(pred))
                if exit_block is None:
                    raise MergeError(f"no merged exit for block %{pred.name}")
                shell.add_incoming(self._resolve(value, side), exit_block)
        # Every phi must list *all* predecessors of its merged block; edges
        # that can only be taken by the other original function get undef.
        for shell, _original, _side in self.phi_shells:
            block = shell.parent
            assert block is not None
            covered = {id(b) for _v, b in shell.incoming}
            for pred in block.predecessors():
                if id(pred) not in covered:
                    shell.add_incoming(UndefValue(shell.type), pred)

    def _drop_dummies(self) -> None:
        if hasattr(self, "_dummies"):
            for dummy in self._dummies.values():
                if dummy.num_uses:
                    raise MergeError("unpatched dummy block operand")
        # Remove degenerate empty-join artifacts is unnecessary: every block
        # created by the merger is populated and terminated by construction.


def merge_functions(
    alignment: FunctionAlignment,
    module: Module,
    name: Optional[str] = None,
    options: MergeOptions = MergeOptions(),
) -> MergeResult:
    """Merge the aligned pair into one new function added to *module*.

    Raises :class:`MergeError` when the pair cannot be merged (diverging
    return types, irreparable SSA, ...); the module is left unmodified in
    that case.
    """
    return _Merger(alignment, module, name, options).build()
