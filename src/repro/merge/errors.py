"""Merge-stage error types."""

from __future__ import annotations

__all__ = ["MergeError", "CommitError"]


class MergeError(Exception):
    """Raised when a candidate pair cannot be merged (codegen rejection)."""


class CommitError(MergeError):
    """Raised when applying a profitable merge to the module fails part-way
    (e.g. dangling uses of an original); the transaction layer rolls the
    module back to its pre-attempt state when this escapes ``commit_merge``."""
