"""Merge-stage error types."""

from __future__ import annotations

__all__ = ["MergeError"]


class MergeError(Exception):
    """Raised when a candidate pair cannot be merged (codegen rejection)."""
