"""SSA dominance repair for merged functions (paper Section III-E).

Sharing instructions between two control-flow skeletons routinely breaks the
SSA dominance property: a value defined on one function's private path gets
used in a shared block that the other function can also reach.  Most
violations could be fixed with phi insertion; HyFM/SalSSA (and we) fall back
to *demotion*: break the use-def chain through stack memory by storing the
value right after its definition and loading it back right before each use.

Section III-E documents two bugs in HyFM's placement logic, both reproduced
here behind ``legacy_bugs=True``:

1. **Phi definition followed by other phis.**  HyFM placed the store at the
   *end* of the defining block while rewriting same-block uses to loads that
   execute *before* that store — they read stale memory.  The fix stores at
   the first legal point after the definition (right after the phi group).

2. **Invoke definition used by a phi in a successor block.**  The only legal
   load point for a phi use is in the incoming block before its terminator —
   which is *before* the invoke that defines the value.  There is no valid
   store/load placement, and none is needed: the invoke result is available
   on the normal edge, so the direct use is already correct.  The fix leaves
   that use alone; the legacy behaviour inserts the bogus load.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..analysis.dominators import DominatorTree
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Instruction, Invoke, Load, Phi, Store
from .errors import MergeError

__all__ = ["repair_ssa", "find_dominance_violations", "DEMOTE_PREFIX"]

# Name prefix of the stack slots introduced by :func:`_demote_to_stack`.
# The merge-safety linter keys on it: a load from a demotion slot that no
# store reaches is precisely a §III-E placement bug.
DEMOTE_PREFIX = "demote."


def find_dominance_violations(
    func: Function,
) -> Dict[int, Tuple[Instruction, List[Tuple[Instruction, int]]]]:
    """Map of defining-instruction id -> (def, [(user, operand_index), ...])."""
    dt = DominatorTree(func)
    violations: Dict[int, Tuple[Instruction, List[Tuple[Instruction, int]]]] = {}
    for block in func.blocks:
        if not dt.is_reachable(block):
            continue
        for inst in block.instructions:
            for idx, op in enumerate(inst.operands):
                if inst.is_phi and idx % 2 == 1:
                    continue  # incoming-block slot
                if not isinstance(op, Instruction):
                    continue
                if op.parent is None or not dt.is_reachable(op.parent):
                    continue
                if not dt.dominates(op, inst, idx):
                    entry = violations.setdefault(id(op), (op, []))
                    entry[1].append((inst, idx))
    return violations


def _split_invoke_normal_edge(invoke: Invoke) -> BasicBlock:
    """Ensure the invoke's normal destination has the invoke's block as its
    only predecessor, splitting the edge if needed; returns the block where a
    store of the invoke result can legally be placed."""
    normal = invoke.normal_dest
    preds = normal.predecessors()
    if len(preds) == 1:
        return normal
    func = invoke.function
    assert func is not None
    from ..ir.instructions import Branch

    split = BasicBlock(f"{normal.name}.split", func)
    split.append(Branch(normal))
    # Retarget the invoke's normal edge and fix phis in the old target.
    for idx, op in enumerate(invoke.operands):
        if op is normal and idx == invoke.num_operands - 2:
            invoke.set_operand(idx, split)
    for phi in normal.phis():
        phi.set_incoming_block(invoke.parent, split)  # type: ignore[arg-type]
    return split


def _store_insertion_point(value: Instruction, legacy_bugs: bool) -> Tuple[BasicBlock, int]:
    """Where to store *value* to memory: (block, instruction index)."""
    block = value.parent
    assert block is not None
    if isinstance(value, Phi):
        if legacy_bugs:
            # Bug 1: store at the end of the block (before the terminator),
            # even though same-block uses will load before that point.
            index = len(block.instructions)
            if block.is_terminated:
                index -= 1
            return block, index
        return block, block.first_non_phi_index()
    if isinstance(value, Invoke):
        target = _split_invoke_normal_edge(value)
        return target, target.first_non_phi_index()
    if value.is_terminator:
        raise MergeError(f"cannot demote terminator result %{value.name}")
    return block, block.instructions.index(value) + 1


def _demote_to_stack(func: Function, value: Instruction, legacy_bugs: bool) -> None:
    """Replace all uses of *value* with loads from a dedicated stack slot."""
    slot = Alloca(value.type)
    slot.name = func.next_name(f"{DEMOTE_PREFIX}{value.name or 'v'}")
    func.entry.insert(0, slot)

    uses = list(value.uses())  # snapshot before we add the store

    store_block, store_index = _store_insertion_point(value, legacy_bugs)
    store_block.insert(store_index, Store(value, slot))

    for user, idx in uses:
        if not isinstance(user, Instruction):
            continue
        if isinstance(user, Phi) and idx % 2 == 0:
            incoming_block: BasicBlock = user.operand(idx + 1)  # type: ignore[assignment]
            if isinstance(value, Invoke) and incoming_block is value.parent:
                if legacy_bugs:
                    # Bug 2: a load placed before the terminator of the
                    # incoming block executes *before* the invoke defines the
                    # value — it reads whatever is in the slot.
                    load = Load(slot)
                    load.name = func.next_name("reload")
                    incoming_block.insert_before_terminator(load)
                    user.set_operand(idx, load)
                # Fixed behaviour: the invoke result is valid on the normal
                # edge; leave the direct use in place.
                continue
            load = Load(slot)
            load.name = func.next_name("reload")
            incoming_block.insert_before_terminator(load)
            user.set_operand(idx, load)
        else:
            load = Load(slot)
            load.name = func.next_name("reload")
            block = user.parent
            assert block is not None
            block.insert_before(user, load)
            user.set_operand(idx, load)


def repair_ssa(func: Function, legacy_bugs: bool = False, max_rounds: int = 16) -> int:
    """Fix all dominance violations in *func* by stack demotion.

    Returns the number of values demoted.  Raises :class:`MergeError` if the
    violations do not converge (which would indicate a merger bug).
    """
    demoted = 0
    for _round in range(max_rounds):
        violations = find_dominance_violations(func)
        if not violations:
            return demoted
        for _vid, (value, _uses) in sorted(
            violations.items(), key=lambda kv: kv[1][0].name
        ):
            _demote_to_stack(func, value, legacy_bugs)
            demoted += 1
    raise MergeError(f"SSA repair did not converge after {max_rounds} rounds")
