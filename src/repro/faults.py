"""Deterministic fault injection for the merging pipeline.

The §III-E story is that merging infrastructure fails in practice — the
question is whether the pass *contains* such failures (skip the pair,
roll the module back, keep going) or lets them abort a whole build.  A
:class:`FaultInjector` raises :class:`InjectedFault` at a named pipeline
stage so tests can prove the containment property for every stage:

* ``rank``    — before the ranker is consulted for a candidate;
* ``fingerprint`` — inside the ranker's query, before the candidate's
  fingerprint is consulted (both ranking strategies);
* ``lsh``     — inside the ranker's query, before the LSH bucket probe
  (:class:`~repro.search.pairing.MinHashLSHRanker` only);
* ``align``   — before block alignment;
* ``codegen`` — before merged-function code generation;
* ``verify``  — before the IR verifier runs on the merged function;
* ``staticcheck`` — before the merge-safety linter (if enabled);
* ``validate`` — before the translation validator (if enabled);
* ``oracle``  — before the differential-execution oracle (if enabled);
* ``commit``  — *in the middle of* call-site rewriting, after the first
  original has already been redirected, so a commit-stage fault leaves
  the module genuinely half-mutated and rollback must repair it.

The fuzz campaign adds two *worker* stages that live outside the merge
pipeline (:data:`WORKER_FAULT_STAGES`): ``worker_crash`` kills a
subprocess worker mid-candidate and ``worker_hang`` makes it sleep past
its deadline, so quarantine behaviour is testable deterministically.

The serve daemon adds two *service* stages (:data:`SERVE_FAULT_STAGES`):
``serve_commit`` fires in the middle of a delta commit — after the corpus
module has been mutated and part of the index update applied, so rollback
to the pre-request snapshot is genuinely exercised — and
``serve_disconnect`` simulates the client vanishing mid-request (the
response cannot be delivered; the daemon must stay consistent anyway).

The optimistic cross-partition sweep adds one *reconcile* stage
(:data:`RECONCILE_FAULT_STAGES`): ``reconcile`` fires at the start of a
phase-2 cross-partition merge attempt, inside the attempt's transaction,
so a reconcile-stage fault is contained per pair and the module stays
byte-identical to the phase-1 (partition-local) result.

Injection is deterministic: ``FaultInjector("codegen", at=2)`` fires on
the second codegen attempt only; ``at=None`` fires on every hit.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

__all__ = [
    "FAULT_STAGES",
    "WORKER_FAULT_STAGES",
    "SERVE_FAULT_STAGES",
    "RECONCILE_FAULT_STAGES",
    "InjectedFault",
    "FaultInjector",
]

FAULT_STAGES = (
    "rank",
    "fingerprint",
    "lsh",
    "align",
    "codegen",
    "verify",
    "staticcheck",
    "validate",
    "oracle",
    "commit",
)

#: Campaign-level stages: faults in the crash-isolated worker itself, not
#: in the merge pipeline it runs.  Kept out of :data:`FAULT_STAGES` so the
#: per-stage containment tests only cover stages the pass can contain.
WORKER_FAULT_STAGES = ("worker_crash", "worker_hang")

#: Daemon-level stages: faults in the serve request loop, not in the merge
#: pipeline.  Kept out of :data:`FAULT_STAGES` for the same reason as the
#: worker stages.
SERVE_FAULT_STAGES = ("serve_commit", "serve_disconnect")

#: Sweep-level stage: a fault at the start of each phase-2 cross-partition
#: attempt in :func:`repro.merge.partitioned.optimistic_sweep`.  Kept out
#: of :data:`FAULT_STAGES` because it only exists in the reconcile driver,
#: not in a plain :class:`~repro.merge.pass_.FunctionMergingPass` run.
RECONCILE_FAULT_STAGES = ("reconcile",)


class InjectedFault(RuntimeError):
    """The synthetic failure raised by :class:`FaultInjector`.

    ``fault_stage`` records the stage the injector fired at, which may be
    finer-grained than the pipeline stage the pass was executing (the
    ``fingerprint``/``lsh`` stages fire inside the ``rank`` stage).
    """

    fault_stage: Optional[str] = None


class FaultInjector:
    """Raise at the *at*-th hit of *stage* (every hit when ``at`` is None)."""

    def __init__(
        self,
        stage: str,
        at: Optional[int] = None,
        exception: Type[BaseException] = InjectedFault,
    ) -> None:
        known = (
            FAULT_STAGES
            + WORKER_FAULT_STAGES
            + SERVE_FAULT_STAGES
            + RECONCILE_FAULT_STAGES
        )
        if stage not in known:
            raise ValueError(
                f"unknown fault stage {stage!r}; expected one of {known}"
            )
        if at is not None and at < 1:
            raise ValueError("fault ordinal is 1-based")
        self.stage = stage
        self.at = at
        self.exception = exception
        self.hits: Dict[str, int] = {s: 0 for s in known}
        self.fired = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultInjector":
        """Build an injector from a ``stage`` or ``stage:N`` CLI spec."""
        stage, _, ordinal = spec.partition(":")
        return cls(stage, at=int(ordinal) if ordinal else None)

    def hit(self, stage: str) -> None:
        """Record one arrival at *stage*, raising if the plan says so."""
        self.hits[stage] += 1
        if stage != self.stage:
            return
        if self.at is None or self.hits[stage] == self.at:
            self.fired += 1
            exc = self.exception(
                f"injected fault at stage {stage!r} (hit {self.hits[stage]})"
            )
            try:
                exc.fault_stage = stage
            except AttributeError:  # exception types with __slots__
                pass
            raise exc

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        when = "always" if self.at is None else f"at={self.at}"
        return f"<FaultInjector {self.stage} {when} fired={self.fired}>"
