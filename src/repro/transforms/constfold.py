"""Constant folding and trivial instruction simplification.

Operand merging inserts ``select i1 %fid, C2, C1`` instructions; when the
two constants turn out equal — or a binary op ends up with constant inputs
after other folds — the result is a compile-time constant.  This pass folds
them, feeding :mod:`repro.transforms.simplify_cfg` (constant branch
conditions) and :mod:`repro.transforms.dce` (newly dead selects).
"""

from __future__ import annotations

from typing import Optional

from ..ir.function import Function
from ..ir.instructions import BinaryOp, Cast, ICmp, ICmpPred, Instruction, Opcode, Select
from ..ir.types import IntType
from ..ir.values import ConstantInt, Value

__all__ = ["fold_constants"]


def _fold_binary(inst: BinaryOp) -> Optional[Value]:
    lhs, rhs = inst.lhs, inst.rhs
    type_ = inst.type
    if not isinstance(type_, IntType):
        return None  # float folding skipped: rounding must match interp
    # Identity simplifications first (one constant operand).
    if isinstance(rhs, ConstantInt):
        if rhs.value == 0 and inst.opcode in (
            Opcode.ADD,
            Opcode.SUB,
            Opcode.OR,
            Opcode.XOR,
            Opcode.SHL,
            Opcode.LSHR,
            Opcode.ASHR,
        ):
            return lhs
        if rhs.value == 1 and inst.opcode in (Opcode.MUL, Opcode.SDIV, Opcode.UDIV):
            return lhs
        if rhs.value == 0 and inst.opcode in (Opcode.MUL, Opcode.AND):
            return ConstantInt(type_, 0)
    if not (isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt)):
        return None
    bits = type_.bits
    mask = type_.mask
    a, b = lhs.value, rhs.value

    def signed(x: int) -> int:
        return x - (1 << bits) if x >= (1 << (bits - 1)) else x

    op = inst.opcode
    if op == Opcode.ADD:
        return ConstantInt(type_, a + b)
    if op == Opcode.SUB:
        return ConstantInt(type_, a - b)
    if op == Opcode.MUL:
        return ConstantInt(type_, a * b)
    if op == Opcode.AND:
        return ConstantInt(type_, a & b)
    if op == Opcode.OR:
        return ConstantInt(type_, a | b)
    if op == Opcode.XOR:
        return ConstantInt(type_, a ^ b)
    if op == Opcode.SHL:
        return ConstantInt(type_, 0 if b >= bits else a << b)
    if op == Opcode.LSHR:
        return ConstantInt(type_, 0 if b >= bits else a >> b)
    if op == Opcode.ASHR:
        sa = signed(a)
        return ConstantInt(type_, (sa >> min(b, bits - 1)) & mask)
    if op in (Opcode.SDIV, Opcode.SREM) and signed(b) != 0:
        sa, sb = signed(a), signed(b)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return ConstantInt(type_, q if op == Opcode.SDIV else sa - q * sb)
    if op in (Opcode.UDIV, Opcode.UREM) and b != 0:
        return ConstantInt(type_, a // b if op == Opcode.UDIV else a % b)
    return None


_ICMP_FOLDS = {
    ICmpPred.EQ: lambda a, b: a == b,
    ICmpPred.NE: lambda a, b: a != b,
    ICmpPred.UGT: lambda a, b: a > b,
    ICmpPred.UGE: lambda a, b: a >= b,
    ICmpPred.ULT: lambda a, b: a < b,
    ICmpPred.ULE: lambda a, b: a <= b,
}


def _fold_icmp(inst: ICmp) -> Optional[Value]:
    from ..ir.types import I1

    lhs, rhs = inst.operand(0), inst.operand(1)
    if not (isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt)):
        return None
    type_ = lhs.type
    bits = type_.bits  # type: ignore[attr-defined]

    def signed(x: int) -> int:
        return x - (1 << bits) if x >= (1 << (bits - 1)) else x

    a, b = lhs.value, rhs.value
    pred = inst.pred
    if pred in _ICMP_FOLDS:
        return ConstantInt(I1, int(_ICMP_FOLDS[pred](a, b)))
    signed_table = {
        ICmpPred.SGT: signed(a) > signed(b),
        ICmpPred.SGE: signed(a) >= signed(b),
        ICmpPred.SLT: signed(a) < signed(b),
        ICmpPred.SLE: signed(a) <= signed(b),
    }
    return ConstantInt(I1, int(signed_table[pred]))


def _fold_select(inst: Select) -> Optional[Value]:
    cond = inst.condition
    if isinstance(cond, ConstantInt):
        return inst.true_value if cond.value else inst.false_value
    tv, fv = inst.true_value, inst.false_value
    if tv is fv:
        return tv
    if (
        isinstance(tv, ConstantInt)
        and isinstance(fv, ConstantInt)
        and tv.value == fv.value
    ):
        return tv
    return None


def _fold_cast(inst: Cast) -> Optional[Value]:
    value = inst.value
    if not isinstance(value, ConstantInt) or not isinstance(inst.type, IntType):
        return None
    src_bits = value.type.bits  # type: ignore[attr-defined]
    v = value.value
    if inst.opcode == Opcode.TRUNC or inst.opcode == Opcode.ZEXT:
        return ConstantInt(inst.type, v)
    if inst.opcode == Opcode.SEXT:
        if v >= (1 << (src_bits - 1)):
            v -= 1 << src_bits
        return ConstantInt(inst.type, v)
    return None


def _fold_one(inst: Instruction) -> Optional[Value]:
    if isinstance(inst, BinaryOp):
        return _fold_binary(inst)
    if isinstance(inst, ICmp):
        return _fold_icmp(inst)
    if isinstance(inst, Select):
        return _fold_select(inst)
    if isinstance(inst, Cast):
        return _fold_cast(inst)
    return None


def fold_constants(func: Function) -> int:
    """Fold constant expressions to a fixpoint; returns folds performed."""
    folded = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in list(block.instructions):
                replacement = _fold_one(inst)
                if replacement is not None and replacement is not inst:
                    inst.replace_all_uses_with(replacement)
                    inst.erase_from_parent()
                    folded += 1
                    changed = True
    return folded
