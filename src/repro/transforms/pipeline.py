"""A small pass pipeline: the "rest of the compiler" after merging.

``optimize_function``/``optimize_module`` run constant folding, CFG
simplification and DCE to a fixpoint — the clean-ups LLVM's -Os pipeline
would apply to merged code before emission, so size measurements reflect
realistic output rather than the merger's conservative scaffolding.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.function import Function
from ..ir.module import Module
from .constfold import fold_constants
from .dce import eliminate_dead_code, eliminate_dead_functions
from .simplify_cfg import simplify_cfg

__all__ = ["OptimizationStats", "optimize_function", "optimize_module"]


@dataclass
class OptimizationStats:
    folds: int = 0
    cfg_changes: int = 0
    dead_instructions: int = 0
    dead_functions: int = 0

    def __add__(self, other: "OptimizationStats") -> "OptimizationStats":
        return OptimizationStats(
            self.folds + other.folds,
            self.cfg_changes + other.cfg_changes,
            self.dead_instructions + other.dead_instructions,
            self.dead_functions + other.dead_functions,
        )

    @property
    def total(self) -> int:
        return (
            self.folds
            + self.cfg_changes
            + self.dead_instructions
            + self.dead_functions
        )


def optimize_function(func: Function, max_rounds: int = 8) -> OptimizationStats:
    """Fold → simplify-cfg → DCE to a fixpoint on one function."""
    stats = OptimizationStats()
    for _ in range(max_rounds):
        round_stats = OptimizationStats(
            folds=fold_constants(func),
            cfg_changes=simplify_cfg(func),
            dead_instructions=eliminate_dead_code(func),
        )
        stats = stats + round_stats
        if round_stats.total == 0:
            break
    return stats


def optimize_module(
    module: Module, max_rounds: int = 8, drop_dead_functions: bool = True
) -> OptimizationStats:
    """Optimize every defined function, then drop unreferenced internals.

    ``drop_dead_functions=False`` keeps never-referenced internal functions
    (library-style modules where everything is a potential entry point).
    """
    stats = OptimizationStats()
    for func in module.defined_functions():
        stats = stats + optimize_function(func, max_rounds)
    if drop_dead_functions:
        stats.dead_functions += eliminate_dead_functions(module)
    return stats
