"""CFG simplification.

The merged-code generator emits conservative block structure: join blocks
holding nothing but a branch, single-predecessor chains, and conditional
branches whose condition is a constant (when a select-merged operand folded
away).  This pass performs the classic clean-ups LLVM's ``simplifycfg``
would apply before size measurement:

* fold conditional branches on constant conditions;
* remove blocks that only branch (retargeting predecessors and phis);
* merge single-successor/single-predecessor block chains;
* delete unreachable blocks.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.cfg import remove_unreachable_blocks
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Branch, Instruction, Phi
from ..ir.values import ConstantInt

__all__ = ["simplify_cfg"]


def _fold_constant_branches(func: Function) -> int:
    changed = 0
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Branch) and term.is_conditional:
            cond = term.condition
            if isinstance(cond, ConstantInt):
                taken_idx = 1 if cond.value else 2
                dead_idx = 2 if cond.value else 1
                taken: BasicBlock = term.operand(taken_idx)  # type: ignore[assignment]
                dead: BasicBlock = term.operand(dead_idx)  # type: ignore[assignment]
                if dead is not taken:
                    for phi in dead.phis():
                        if phi.incoming_for(block) is not None:
                            phi.remove_incoming(block)
                term.erase_from_parent()
                block.append(Branch(taken))
                changed += 1
    return changed


def _forward_empty_blocks(func: Function) -> int:
    """Retarget edges through blocks that contain only ``br label %x``."""
    changed = 0
    for block in list(func.blocks):
        if block is func.entry:
            continue
        if len(block.instructions) != 1:
            continue
        term = block.terminator
        if not isinstance(term, Branch) or term.is_conditional:
            continue
        target: BasicBlock = term.successors()[0]
        if target is block:
            continue  # self loop
        preds = block.predecessors()
        if not preds:
            continue
        # A phi in the target distinguishing `block` from a pred that also
        # reaches `target` directly cannot be collapsed without merging
        # incoming values; skip those (LLVM does the same dance).
        target_phis = target.phis()
        if target_phis:
            pred_ids = {id(p) for p in preds}
            existing = {id(b) for _v, b in target_phis[0].incoming}
            if pred_ids & existing:
                continue
        for pred in preds:
            pterm = pred.terminator
            if pterm is None:
                continue
            for idx, op in enumerate(pterm.operands):
                if op is block:
                    pterm.set_operand(idx, target)
            changed += 1
        for phi in target_phis:
            incoming = phi.incoming_for(block)
            if incoming is not None:
                phi.remove_incoming(block)
                for pred in preds:
                    phi.add_incoming(incoming, pred)
        block.erase_from_parent()
        changed += 1
    return changed


def _merge_block_chains(func: Function) -> int:
    """Merge B into A when A's only successor is B and B's only pred is A."""
    changed = 0
    for block in list(func.blocks):
        term = block.terminator
        if not isinstance(term, Branch) or term.is_conditional:
            continue
        succ: BasicBlock = term.successors()[0]
        if succ is block or succ is func.entry:
            continue
        preds = succ.predecessors()
        if len(preds) != 1 or preds[0] is not block:
            continue
        # Phis in succ have a single incoming value: replace them with it.
        for phi in list(succ.phis()):
            incoming = phi.incoming_for(block)
            assert incoming is not None
            phi.replace_all_uses_with(incoming)
            phi.erase_from_parent()
        term.erase_from_parent()
        for inst in list(succ.instructions):
            succ.remove(inst)
            block.append(inst)
        succ.replace_all_uses_with(block)  # stray phi references
        succ.erase_from_parent()
        changed += 1
    return changed


def simplify_cfg(func: Function) -> int:
    """Run all simplifications to a fixpoint; returns total change count."""
    if func.is_declaration:
        return 0
    total = 0
    while True:
        changed = _fold_constant_branches(func)
        changed += remove_unreachable_blocks(func)
        changed += _forward_empty_blocks(func)
        changed += _merge_block_chains(func)
        total += changed
        if not changed:
            return total
