"""Standard IR clean-up passes (the post-merge -Os pipeline stand-in)."""

from .constfold import fold_constants
from .dce import eliminate_dead_code, eliminate_dead_functions
from .mem2reg import dominance_frontiers, promote_allocas, promote_module
from .pipeline import OptimizationStats, optimize_function, optimize_module
from .simplify_cfg import simplify_cfg

__all__ = [
    "fold_constants",
    "eliminate_dead_code",
    "eliminate_dead_functions",
    "dominance_frontiers",
    "promote_allocas",
    "promote_module",
    "OptimizationStats",
    "optimize_function",
    "optimize_module",
    "simplify_cfg",
]
