"""Dead code elimination.

Merged functions carry per-function phi shells and select chains that are
dead on one of the two paths; DCE cleans them up exactly the way LLVM's
post-merge pipeline would, making the size model reflect what a real
backend would emit.
"""

from __future__ import annotations

from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.module import Module

__all__ = ["eliminate_dead_code", "eliminate_dead_functions"]


def _is_trivially_dead(inst: Instruction) -> bool:
    if inst.num_uses:
        return False
    if inst.is_terminator or inst.is_phi:
        return inst.is_phi  # unused phis are removable, terminators never
    return not inst.has_side_effects()


def eliminate_dead_code(func: Function) -> int:
    """Remove instructions whose results are unused and side-effect free.

    Iterates to a fixpoint (removing one instruction can make its operands
    dead).  Returns the number of instructions removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for block in func.blocks:
            for inst in list(block.instructions):
                if _is_trivially_dead(inst):
                    inst.erase_from_parent()
                    removed += 1
                    changed = True
    return removed


def eliminate_dead_functions(module: Module) -> int:
    """Remove internal functions that are never referenced.

    Mirrors ``internalize`` + ``globaldce`` in an LTO pipeline; merging
    leaves behind nothing by construction, but generated workloads and
    user pipelines may.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for func in list(module.functions):
            if func.internal and not func.is_declaration and func.num_uses == 0:
                # Entry-point convention: externally-visible functions and
                # drivers stay.
                func.erase_from_parent()
                removed += 1
                changed = True
    return removed
