"""Promote memory to registers (the classic ``mem2reg`` pass).

The MiniC frontend lowers every local variable to an entry-block ``alloca``
with load/store traffic.  This pass rebuilds SSA form: phi nodes are placed
at the iterated dominance frontier of each variable's definition blocks and
uses are renamed along a dominator-tree walk — the standard
Cytron-et-al. construction, which is also what LLVM runs before any of the
merging work in the paper begins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.cfg import reachable_blocks
from ..analysis.dominators import DominatorTree
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, Instruction, Load, Phi, Store
from ..ir.module import Module
from ..ir.values import UndefValue, Value

__all__ = ["promote_allocas", "promote_module", "dominance_frontiers"]


def dominance_frontiers(
    func: Function, dt: DominatorTree
) -> Dict[int, Set[BasicBlock]]:
    """Dominance frontier of every reachable block (Cooper's algorithm)."""
    frontiers: Dict[int, Set[BasicBlock]] = {
        id(b): set() for b in func.blocks if dt.is_reachable(b)
    }
    for block in func.blocks:
        if not dt.is_reachable(block):
            continue
        preds = [p for p in block.predecessors() if dt.is_reachable(p)]
        if len(preds) < 2:
            continue
        idom = dt.idom(block)
        for pred in preds:
            runner: Optional[BasicBlock] = pred
            while runner is not None and runner is not idom:
                frontiers[id(runner)].add(block)
                runner = dt.idom(runner)
    return frontiers


def _promotable(alloca: Alloca) -> bool:
    """True if every use is a direct load or a store *to* the slot."""
    for user, index in alloca.uses():
        if isinstance(user, Load):
            continue
        if isinstance(user, Store) and index == 1:  # pointer operand
            continue
        return False
    return True


def promote_allocas(func: Function) -> int:
    """Promote all promotable allocas in *func*; returns how many."""
    if func.is_declaration:
        return 0
    live = reachable_blocks(func)
    if any(id(b) not in live for b in func.blocks):
        # Keep the pass simple: require a cleaned CFG (frontend/merger both
        # remove unreachable blocks before running us).
        from .simplify_cfg import simplify_cfg  # noqa: F401  (documented dep)

        from ..analysis.cfg import remove_unreachable_blocks

        remove_unreachable_blocks(func)

    allocas: List[Alloca] = [
        inst
        for block in func.blocks
        for inst in block.instructions
        if isinstance(inst, Alloca) and _promotable(inst)
    ]
    if not allocas:
        return 0

    dt = DominatorTree(func)
    frontiers = dominance_frontiers(func, dt)
    slot_index = {id(a): i for i, a in enumerate(allocas)}

    # -- phi placement at the iterated dominance frontier ------------------------
    phis: Dict[Tuple[int, int], Phi] = {}  # (block id, slot) -> phi
    for slot, alloca in enumerate(allocas):
        def_blocks = {
            id(user.parent)
            for user, index in alloca.uses()
            if isinstance(user, Store) and user.parent is not None
        }
        worklist = [b for b in func.blocks if id(b) in def_blocks]
        placed: Set[int] = set()
        while worklist:
            block = worklist.pop()
            for frontier_block in frontiers.get(id(block), ()):
                if id(frontier_block) in placed:
                    continue
                placed.add(id(frontier_block))
                phi = Phi(alloca.allocated_type)
                phi.name = func.next_name(f"{alloca.name or 'mem'}.phi")
                frontier_block.insert(0, phi)
                phis[(id(frontier_block), slot)] = phi
                if id(frontier_block) not in def_blocks:
                    worklist.append(frontier_block)

    # -- renaming along the dominator tree ---------------------------------------
    stacks: List[List[Value]] = [[] for _ in allocas]
    phi_slot: Dict[int, int] = {id(phi): slot for (_bid, slot), phi in phis.items()}

    def current(slot: int, type_) -> Value:
        return stacks[slot][-1] if stacks[slot] else UndefValue(type_)

    def rename(block: BasicBlock) -> None:
        pushed = [0] * len(allocas)
        for inst in list(block.instructions):
            if isinstance(inst, Phi):
                slot = phi_slot.get(id(inst))
                if slot is not None:
                    stacks[slot].append(inst)
                    pushed[slot] += 1
                continue
            if isinstance(inst, Load):
                slot = slot_index.get(id(inst.pointer))
                if slot is not None:
                    inst.replace_all_uses_with(
                        current(slot, allocas[slot].allocated_type)
                    )
                    inst.erase_from_parent()
                continue
            if isinstance(inst, Store):
                slot = slot_index.get(id(inst.pointer))
                if slot is not None:
                    stacks[slot].append(inst.value)
                    pushed[slot] += 1
                    inst.erase_from_parent()
                continue
        for succ in block.successors():
            for slot, alloca in enumerate(allocas):
                phi = phis.get((id(succ), slot))
                if phi is not None and phi.incoming_for(block) is None:
                    phi.add_incoming(
                        current(slot, alloca.allocated_type), block
                    )
        for child in dt.children(block):
            rename(child)
        for slot, count in enumerate(pushed):
            if count:
                del stacks[slot][-count:]

    rename(func.entry)

    for alloca in allocas:
        assert alloca.num_uses == 0, f"unpromoted use of %{alloca.name}"
        alloca.erase_from_parent()

    # Phis for never-stored paths may be fed only by undef/self; leave them —
    # DCE removes unused ones, and partially-undef phis are still correct.
    return len(allocas)


def promote_module(module: Module) -> int:
    """Run mem2reg on every defined function."""
    return sum(promote_allocas(f) for f in module.defined_functions())
