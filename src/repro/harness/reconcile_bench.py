"""Optimistic cross-partition merging benchmark (``bench-perf --reconcile``).

Per workload size, against the same module text:

* **partition-local baseline** — :func:`~repro.merge.partitioned.partition_sweep`
  applied via the phase-1 replay only: what ThinLTO-style partitioning
  achieves when cross-partition pairs are simply forgone;
* **optimistic two-phase** — :func:`~repro.merge.partitioned.optimistic_sweep`:
  the same partition-local decisions plus the phase-2 global re-ranking
  that recovers cross-partition pairs (rolling back lower-benefit
  optimistic merges where they conflict).

Identity checks ride along and become the tier-2 gate
(``benchmarks/test_reconcile_perf.py``): the optimistic sweep's phase-1
size must equal the partition-local baseline's final size (the replay is
faithful), the recovered size delta must be nonnegative (reconciliation
never loses bytes — its conflict resolution only ever trades up), and
the sweep digest — every partition decision plus every phase-2
reconcile decision — must be identical across repeated runs and across
worker counts (1 vs. the partition count).
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

from ..analysis.size import module_size
from ..merge.partitioned import optimistic_sweep, partition_sweep
from ..merge.pass_ import PassConfig
from ..merge.reconcile import ReconcileReport, _OptimisticDriver, _replay_phase
from ..search.pairing import MinHashLSHRanker
from ..workloads.suites import build_workload

__all__ = ["DEFAULT_RECONCILE_SIZES", "run_reconcile_bench"]

DEFAULT_RECONCILE_SIZES = (48, 96)


def _baseline_size(
    workload: str, n: int, partitions: int, config: PassConfig
) -> Tuple[int, int, int]:
    """Partition-local result applied to a fresh module: (size_before,
    size_after, merges).  Uses the same sweep+replay machinery as the
    optimistic path with the reconcile phase simply absent, so the two
    sides differ in exactly the feature under test."""
    module = build_workload(n, f"{workload}{n}")
    size_before = module_size(module)
    sweep = partition_sweep(module, partitions, MinHashLSHRanker, config)
    driver = _OptimisticDriver(module, config, None)
    report = ReconcileReport(partitions=partitions)
    _replay_phase(driver, sweep.results, report)
    return size_before, module_size(module), report.replay_merges


def run_reconcile_bench(
    sizes=DEFAULT_RECONCILE_SIZES,
    partitions: int = 4,
    repeats: int = 2,
    workload: str = "reconcile",
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Rows (one per size) + metadata with the tier-2 gated headline."""
    config = PassConfig(verify=True)
    rows: List[Dict[str, object]] = []
    for n in sizes:
        size_before, baseline_after, baseline_merges = _baseline_size(
            workload, n, partitions, config
        )

        digests: List[str] = []
        last = None
        t_opt = None
        for run in range(max(2, repeats)):
            # Alternate worker counts so digest equality also covers the
            # serial-vs-parallel axis, not just run-to-run stability.
            workers = 1 if run % 2 == 0 else partitions
            module = build_workload(n, f"{workload}{n}")
            t0 = time.perf_counter()
            sweep = optimistic_sweep(
                module, partitions, MinHashLSHRanker, config, workers=workers
            )
            elapsed = time.perf_counter() - t0
            if t_opt is None or elapsed < t_opt:
                t_opt = elapsed
            digests.append(sweep.digest())
            last = sweep
        rc = last.reconcile

        rows.append(
            {
                "size": n,
                "partitions": partitions,
                "size_before": size_before,
                "baseline_size_after": baseline_after,
                "baseline_merges": baseline_merges,
                "size_phase1": rc.size_phase1,
                "size_after": rc.size_after,
                "replay_merges": rc.replay_merges,
                "replay_diverged": rc.replay_diverged,
                "cross_candidates": rc.cross_candidates,
                "attempted": rc.attempted,
                "recovered_pairs": rc.recovered_pairs,
                "recovered_saving": rc.recovered_saving,
                "recovered_size_delta": rc.recovered_size_delta,
                "conflicts_considered": rc.conflicts_considered,
                "conflicts_resolved": rc.conflicts_resolved,
                "conflicts_skipped": rc.conflicts_skipped,
                "rollbacks": rc.rollbacks,
                "reapplied": rc.reapplied,
                "reapply_failures": rc.reapply_failures,
                "optimistic_time": t_opt,
                "reconcile_time": rc.elapsed,
                "decisions_deterministic": len(set(digests)) == 1,
                "phase1_size_identical": rc.size_phase1 == baseline_after,
            }
        )

    largest = rows[-1]
    extra = largest["recovered_size_delta"]
    before = largest["size_before"]
    metadata: Dict[str, object] = {
        "partitions": partitions,
        "repeats": repeats,
        "workload": workload,
        "headline": {
            "largest_size": largest["size"],
            "recovered_pairs": largest["recovered_pairs"],
            "recovered_size_delta": extra,
            "extra_reduction": (extra / before) if before else 0.0,
            "decisions_deterministic": all(
                r["decisions_deterministic"] for r in rows
            ),
            "phase1_size_identical": all(
                r["phase1_size_identical"] for r in rows
            ),
        },
    }
    return rows, metadata
