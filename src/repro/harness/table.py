"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import List, Mapping, Sequence

__all__ = ["format_table", "format_outcome_table", "format_gate_cost_table"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Align *rows* under *headers* with simple column padding."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_outcome_table(
    counts: Mapping[str, int], include_zero: bool = False
) -> str:
    """Per-outcome attempt counts (``MergeReport.outcome_counts()``) as a
    table, in the report's stable outcome order."""
    rows = [
        (outcome, count)
        for outcome, count in counts.items()
        if count or include_zero
    ]
    return format_table(["outcome", "attempts"], rows)


def format_gate_cost_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Per-module commit-gate costs (``harness.bench.gate_cost_row``):
    staticcheck vs oracle wall-time side by side."""
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                row["module"],
                row["functions"],
                row["attempts"],
                f"{float(row['static_time']) * 1e3:.1f}ms",
                f"{float(row['oracle_time']) * 1e3:.1f}ms",
                f"{float(row['total_time']):.3f}s",
            )
        )
    return format_table(
        ["module", "functions", "attempts", "staticcheck", "oracle", "pass total"],
        table_rows,
    )
