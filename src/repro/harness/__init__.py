"""Experiment harness: drivers and helpers for the paper's tables/figures."""

from .experiments import (
    CompileTimeModel,
    CorrelationResult,
    correlation_experiment,
    make_ranker,
    run_merging,
    runtime_impact_experiment,
    selected_pairs_experiment,
)
from .stats import binned_sums, histogram2d, mean_ci95, pearson
from .table import format_outcome_table, format_table

__all__ = [
    "CompileTimeModel",
    "CorrelationResult",
    "correlation_experiment",
    "make_ranker",
    "run_merging",
    "runtime_impact_experiment",
    "selected_pairs_experiment",
    "binned_sums",
    "histogram2d",
    "mean_ci95",
    "pearson",
    "format_outcome_table",
    "format_table",
]
