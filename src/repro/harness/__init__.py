"""Experiment harness: drivers and helpers for the paper's tables/figures."""

from .bench import gate_cost_row, load_bench_json, write_bench_json
from .profile import (
    DEFAULT_SCALE_SIZES,
    PERF_STAGES,
    PipelineProfile,
    fingerprint_microbench,
    profile_pass,
    run_perf_bench,
    run_scale_bench,
)
from .rss import IsolatedRun, RssSampler, current_rss_kb, peak_rss_kb, run_isolated
from .experiments import (
    CompileTimeModel,
    CorrelationResult,
    correlation_experiment,
    make_ranker,
    run_merging,
    runtime_impact_experiment,
    selected_pairs_experiment,
)
from .stats import binned_sums, histogram2d, mean_ci95, pearson
from .table import format_gate_cost_table, format_outcome_table, format_table

__all__ = [
    "gate_cost_row",
    "load_bench_json",
    "write_bench_json",
    "DEFAULT_SCALE_SIZES",
    "PERF_STAGES",
    "PipelineProfile",
    "fingerprint_microbench",
    "profile_pass",
    "run_perf_bench",
    "run_scale_bench",
    "IsolatedRun",
    "RssSampler",
    "current_rss_kb",
    "peak_rss_kb",
    "run_isolated",
    "CompileTimeModel",
    "CorrelationResult",
    "correlation_experiment",
    "make_ranker",
    "run_merging",
    "runtime_impact_experiment",
    "selected_pairs_experiment",
    "binned_sums",
    "histogram2d",
    "mean_ci95",
    "pearson",
    "format_gate_cost_table",
    "format_outcome_table",
    "format_table",
]
