"""Peak-RSS measurement for the scaling sweep, no psutil required.

Linux exposes a process's resident set in ``/proc/self/status``: ``VmRSS``
is the current value, ``VmHWM`` the high-water mark.  Two measurement
modes:

* :class:`RssSampler` — a background thread polling ``VmRSS`` inside the
  current process.  Cheap and good for coarse in-process profiling, but it
  can miss short allocation spikes between samples and it cannot separate
  the measured region from memory the process already held.
* :func:`run_isolated` — fork a child, run the workload there, and read the
  child's ``VmHWM`` delta.  On fork the child's high-water mark resets to
  (approximately) the parent's resident size at fork time, so recording
  the HWM at entry (*baseline*) and at exit (*peak*) isolates the
  workload's own footprint, kernel-accounted and spike-proof.  This is how
  the scaling sweep compares the memmap-store path against the in-RAM
  path: one fresh child per (size, mode) measurement, orchestrated by a
  parent that keeps itself slim.

``resource.getrusage(ru_maxrss)`` is the fallback when ``/proc`` is not
available (non-Linux); it only provides the high-water mark.
"""

from __future__ import annotations

import multiprocessing
import resource
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["current_rss_kb", "peak_rss_kb", "RssSampler", "IsolatedRun", "run_isolated"]

_PROC_STATUS = "/proc/self/status"


def _read_status_kb(field: str) -> Optional[int]:
    try:
        with open(_PROC_STATUS, "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1])  # value is in kB
    except OSError:
        return None
    return None


def _maxrss_kb() -> int:
    value = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kB; macOS reports bytes.
    return value // 1024 if sys.platform == "darwin" else value


def current_rss_kb() -> int:
    """Current resident set size of this process, in kB."""
    value = _read_status_kb("VmRSS")
    return value if value is not None else _maxrss_kb()


def peak_rss_kb() -> int:
    """High-water-mark resident set size of this process, in kB."""
    value = _read_status_kb("VmHWM")
    return value if value is not None else _maxrss_kb()


class RssSampler:
    """Background-thread RSS sampler: ``with RssSampler() as s: ...``.

    ``s.peak_kb`` is the maximum ``VmRSS`` observed during the block,
    ``s.baseline_kb`` the value at entry.  Polling granularity is
    ``interval`` seconds; short spikes between polls are invisible (use
    :func:`run_isolated` when the peak must be exact).
    """

    def __init__(self, interval: float = 0.01) -> None:
        self.interval = interval
        self.baseline_kb = 0
        self.peak_kb = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _run(self) -> None:
        while not self._stop.is_set():
            self.peak_kb = max(self.peak_kb, current_rss_kb())
            self._stop.wait(self.interval)

    def __enter__(self) -> "RssSampler":
        self.baseline_kb = current_rss_kb()
        self.peak_kb = self.baseline_kb
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.peak_kb = max(self.peak_kb, current_rss_kb())

    @property
    def delta_kb(self) -> int:
        return self.peak_kb - self.baseline_kb


@dataclass
class IsolatedRun:
    """Outcome of one fork-isolated measurement."""

    result: Any
    baseline_kb: int  # child VmHWM at entry ≈ parent RSS at fork
    peak_kb: int  # child VmHWM at exit
    seconds: float

    @property
    def delta_kb(self) -> int:
        """Memory growth attributable to the measured function."""
        return max(0, self.peak_kb - self.baseline_kb)


def _isolated_main(conn, fn: Callable[..., Any], args, kwargs) -> None:
    baseline = peak_rss_kb()
    t0 = time.perf_counter()
    try:
        result = fn(*args, **kwargs)
        payload = ("ok", result)
    except BaseException as exc:  # noqa: BLE001 — relayed to the parent
        payload = ("err", f"{type(exc).__name__}: {exc}")
    seconds = time.perf_counter() - t0
    conn.send((payload, baseline, peak_rss_kb(), seconds))
    conn.close()


def run_isolated(fn: Callable[..., Any], *args, **kwargs) -> IsolatedRun:
    """Run ``fn(*args, **kwargs)`` in a forked child and measure its peak RSS.

    The return value must be picklable (keep it small — write bulk data to
    disk and return paths/digests).  A child exception is re-raised here as
    ``RuntimeError``.  Fork start method only: the closure travels by
    inheritance, not pickling, and the HWM-baseline trick depends on fork
    semantics.
    """
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_isolated_main, args=(child_conn, fn, args, kwargs))
    proc.start()
    child_conn.close()
    try:
        (status, value), baseline, peak, seconds = parent_conn.recv()
    except EOFError:
        proc.join()
        raise RuntimeError(
            f"isolated child died without reporting (exitcode {proc.exitcode})"
        )
    finally:
        parent_conn.close()
    proc.join()
    if status == "err":
        raise RuntimeError(f"isolated child failed: {value}")
    return IsolatedRun(result=value, baseline_kb=baseline, peak_kb=peak, seconds=seconds)
