"""Machine-readable benchmark emission (``BENCH_*.json``).

The perf trajectory of the repo is tracked through small JSON files the
benchmark suites drop next to the repository root: one ``BENCH_<name>.json``
per suite, a list of per-module measurement rows plus free-form metadata.
This module centralizes the schema so every suite emits the same shape.

The first consumer is the commit-gate cost comparison: per module, how
much wall-time the static merge-safety gate (``PassConfig.static_check``)
costs next to the differential-execution oracle gate — the number that
justifies running the cheap static screen before (or instead of) the
expensive dynamic check.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional

from ..merge.report import MergeReport

__all__ = ["gate_cost_row", "write_bench_json", "load_bench_json"]


def gate_cost_row(name: str, report: MergeReport) -> Dict[str, object]:
    """One per-module measurement row from a finished pass run.

    ``static_time`` / ``oracle_time`` are the summed per-attempt gate costs
    (zero when the corresponding gate was disabled), so suites can run the
    gates separately or together and the row stays comparable.
    """
    return {
        "module": name,
        "functions": report.num_functions,
        "attempts": len(report.attempts),
        "merges": report.merges,
        "static_fails": report.outcome_counts().get("static_fail", 0),
        "oracle_fails": report.outcome_counts().get("oracle_fail", 0),
        "static_time": sum(a.static_time for a in report.attempts),
        "oracle_time": sum(a.oracle_time for a in report.attempts),
        "total_time": report.total_time,
        "size_reduction": report.size_reduction,
    }


def write_bench_json(
    path: str,
    name: str,
    rows: List[Mapping[str, object]],
    metadata: Optional[Mapping[str, object]] = None,
) -> None:
    """Write one ``BENCH_*.json`` payload to *path*."""
    payload = {
        "bench": name,
        "metadata": dict(metadata or {}),
        "rows": [dict(r) for r in rows],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_bench_json(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
