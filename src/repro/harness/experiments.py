"""Experiment drivers: one function per paper table/figure.

Every driver returns plain data structures (lists/dicts) so the benchmark
scripts under ``benchmarks/`` can both print the paper-style rows and
assert the qualitative claims (who wins, roughly by how much, where the
crossover falls).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..alignment.needleman_wunsch import EncodedRatioScorer, alignment_ratio_encoded
from ..analysis.size import module_size
from ..fingerprint.encoding import EncodingOptions, encode_function
from ..fingerprint.minhash import MinHashConfig, MinHashFingerprint
from ..fingerprint.opcode_freq import fingerprint_function
from ..ir.interp import Interpreter
from ..ir.module import Module
from ..merge.pass_ import FunctionMergingPass, PassConfig
from ..merge.report import MergeReport
from ..search.pairing import ExhaustiveRanker, MinHashLSHRanker, Ranker
from ..workloads.suites import build_workload
from .stats import pearson

__all__ = [
    "make_ranker",
    "run_merging",
    "CompileTimeModel",
    "correlation_experiment",
    "selected_pairs_experiment",
    "runtime_impact_experiment",
    "CorrelationResult",
]

# Modelled downstream-compilation speed.  A full -Os LTO pipeline compiles
# on the order of tens of thousands of IR instructions per second, i.e.
# tens of microseconds per instruction; the constant only needs to put the
# backend and the (Python) merging pass on comparable scales, as they are
# in the paper's C++ setting.
_BACKEND_SECONDS_PER_INSTRUCTION = 75e-6


def make_ranker(strategy: str, **kwargs) -> Ranker:
    """Ranker factory: ``"hyfm"`` | ``"f3m"`` | ``"f3m-adaptive"``."""
    if strategy == "hyfm":
        return ExhaustiveRanker()
    if strategy == "f3m":
        return MinHashLSHRanker(**kwargs)
    if strategy == "f3m-adaptive":
        return MinHashLSHRanker(adaptive=True, **kwargs)
    raise ValueError(f"unknown strategy {strategy!r}")


@dataclass
class CompileTimeModel:
    """Whole-compilation time = merging pass + modelled backend.

    The backend term scales with the *post-merging* module size, which is
    how merging can pay for itself (paper Section IV-C: "reducing the
    number of functions tends to reduce the amount of work for subsequent
    compilation passes").
    """

    seconds_per_instruction: float = _BACKEND_SECONDS_PER_INSTRUCTION

    def backend_time(self, module: Module) -> float:
        return module.num_instructions * self.seconds_per_instruction

    def total_time(self, report: MergeReport, module: Module) -> float:
        return report.merge_time + self.backend_time(module)


def run_merging(
    module: Module,
    strategy: str,
    pass_config: Optional[PassConfig] = None,
    **ranker_kwargs,
) -> MergeReport:
    """Run one merging configuration over *module* (mutating it).

    ``pass_config`` configures the pass; remaining keyword arguments go to
    the ranker factory (e.g. ``config=MinHashConfig(k=100)`` for F3M).
    """
    ranker = make_ranker(strategy, **ranker_kwargs)
    return FunctionMergingPass(ranker, pass_config or PassConfig(verify=False)).run(module)


# ---------------------------------------------------------------------------
# Figures 4 and 10: fingerprint similarity vs alignment-ratio correlation.
# ---------------------------------------------------------------------------


@dataclass
class CorrelationResult:
    fingerprint: str
    pairs: List[Tuple[float, float]] = field(default_factory=list)  # (sim, ratio)
    correlation: float = 0.0

    def identical_no_alignment(self) -> int:
        """Pairs with identical fingerprints but (near-)zero alignment."""
        return sum(1 for s, r in self.pairs if s >= 0.999 and r < 0.05)

    def disjoint_full_alignment(self) -> int:
        """Pairs with no fingerprint overlap but (near-)perfect alignment."""
        return sum(1 for s, r in self.pairs if s <= 0.001 and r > 0.95)


def correlation_experiment(
    module: Module,
    fingerprint: str = "minhash",
    max_pairs: int = 50_000,
    seed: int = 7,
    minhash_config: MinHashConfig = MinHashConfig(),
    encoding: Optional[EncodingOptions] = None,
    oracle: str = "blocks",
) -> CorrelationResult:
    """Sampled all-pairs similarity-vs-alignment sweep (Figs. 4 and 10).

    The paper plots all 800M Linux pairs; we sample up to *max_pairs*
    uniformly from the n·(n−1)/2 pair space, which preserves the
    correlation statistic the figure reports.

    ``oracle`` selects the alignment-quality ground truth: ``"blocks"``
    runs HyFM's structural block-level alignment (what the paper measures);
    ``"lcs"`` is a cheaper longest-common-subsequence ratio over the
    linearized encodings (more forgiving for unrelated pairs).
    """
    rng = random.Random(seed)
    functions = module.defined_functions()
    enc_options = encoding or EncodingOptions()
    encoded = [encode_function(f, enc_options) for f in functions]

    if fingerprint == "opcode":
        fps = [fingerprint_function(f) for f in functions]

        def sim(i: int, j: int) -> float:
            return fps[i].similarity(fps[j])

    elif fingerprint == "minhash":
        mfps = [
            MinHashFingerprint.from_encoded(e, minhash_config) for e in encoded
        ]

        def sim(i: int, j: int) -> float:
            return mfps[i].similarity(mfps[j])

    else:
        raise ValueError(f"unknown fingerprint kind {fingerprint!r}")

    n = len(functions)
    total_pairs = n * (n - 1) // 2
    result = CorrelationResult(fingerprint)
    if total_pairs <= max_pairs:
        pair_iter = ((i, j) for i in range(n) for j in range(i + 1, n))
    else:
        def sample():
            seen = set()
            while len(seen) < max_pairs:
                i = rng.randrange(n)
                j = rng.randrange(n)
                if i == j:
                    continue
                key = (min(i, j), max(i, j))
                if key not in seen:
                    seen.add(key)
                    yield key

        pair_iter = sample()

    if oracle == "blocks":
        from ..alignment.hyfm_blocks import align_functions

        def ratio(i: int, j: int) -> float:
            return align_functions(functions[i], functions[j]).alignment_ratio

    elif oracle == "lcs":
        # One scorer per left index: the dense pair order is i-outer, so
        # the SequenceMatcher's cached side (seq2 = encoded[i]) is reused
        # across all of i's partners instead of rebuilt per pair.
        scorers: Dict[int, EncodedRatioScorer] = {}

        def ratio(i: int, j: int) -> float:
            scorer = scorers.get(i)
            if scorer is None:
                scorers.clear()
                scorer = scorers[i] = EncodedRatioScorer(encoded[i])
            return scorer.ratio(encoded[j])

    else:
        raise ValueError(f"unknown oracle {oracle!r}")

    sims: List[float] = []
    ratios: List[float] = []
    for i, j in pair_iter:
        sims.append(sim(i, j))
        ratios.append(ratio(i, j))
    result.pairs = list(zip(sims, ratios))
    result.correlation = pearson(sims, ratios)
    return result


# ---------------------------------------------------------------------------
# Figures 6 and 9: similarity distribution of selected pairs.
# ---------------------------------------------------------------------------


def selected_pairs_experiment(
    module: Module, strategy: str, pass_config: Optional[PassConfig] = None, **kw
) -> List[Tuple[float, bool, int, float]]:
    """Run merging; return (similarity, profitable, saving, pair_time) per
    ranked pair (Figure 6 histogram, Figure 9 contributions)."""
    report = run_merging(module, strategy, pass_config, **kw)
    rows = []
    for att in report.attempts:
        if att.candidate is None or att.outcome == "rejected_threshold":
            continue
        pair_time = att.align_time + att.codegen_time + att.update_time
        rows.append((att.similarity, att.success, att.saving, pair_time))
    return rows


# ---------------------------------------------------------------------------
# Figure 17: runtime impact of merged code.
# ---------------------------------------------------------------------------


def runtime_impact_experiment(
    num_functions: int,
    strategies: Sequence[str] = ("hyfm", "f3m"),
    inputs: Sequence[int] = (1, 5, 11),
    name: str = "runtime",
) -> Dict[str, float]:
    """Dynamic-instruction overhead of merged code relative to baseline.

    Returns {strategy: relative slowdown}, where slowdown is the ratio of
    summed dynamic instruction counts of the workload driver.
    """
    baseline = build_workload(num_functions, name)
    driver = baseline.get_function("driver")
    base_count = 0
    for x in inputs:
        base_count += Interpreter().run(driver, [x]).instructions_executed

    out: Dict[str, float] = {}
    for strategy in strategies:
        module = build_workload(num_functions, name)
        run_merging(module, strategy)
        merged_driver = module.get_function("driver")
        count = 0
        for x in inputs:
            count += Interpreter().run(merged_driver, [x]).instructions_executed
        out[strategy] = count / base_count if base_count else 1.0
    return out
