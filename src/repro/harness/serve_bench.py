"""Warm-daemon vs cold one-shot benchmark (``repro bench-perf --serve``).

Three comparisons per workload size, all against the same module text:

* **cold one-shot** — a fresh ``repro merge -s f3m`` subprocess (process
  start + parse + merge + print), plus an in-process variant that strips
  the interpreter startup out, isolating pipeline cost;
* **warm daemon** — the same merge served by a long-lived
  :class:`~repro.serve.daemon.ServeDaemon`: the first request populates
  the caches, steady-state repeats hit the whole-result LRU, and a
  ``no_result_cache`` series shows the pipeline-warm path (only the
  content-addressed fingerprint/alignment/plan caches help);
* **delta vs rebuild** — a 1 %-changed delta submitted into the warm
  daemon against a from-scratch rebuild of the post-delta corpus in a
  fresh daemon.

Identity checks ride along: the daemon's merged module must be
byte-identical to both one-shot paths, and the daemon's incrementally
maintained index must agree with a serial replay of the exact same
insert/remove sequence on a plain :class:`~repro.search.lsh.LSHIndex`
(every live function's best match compared).  A full-rebuild agreement
rate is also reported — not gated, because tombstones legitimately occupy
capped bucket windows that a rebuild starts without.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

from ..fingerprint.batch import minhash_module
from ..fingerprint.encoding import EncodingOptions
from ..fingerprint.minhash import MinHashConfig
from ..ir.function import Function
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..merge.pass_ import FunctionMergingPass, PassConfig
from ..search.lsh import LSHIndex
from ..serve import ServeClient, ServeConfig, ServeDaemon
from ..workloads.mutate import make_variant
from ..workloads.suites import build_workload
from .experiments import make_ranker

__all__ = [
    "declare_external_callees",
    "build_delta_text",
    "run_serve_bench",
]

DEFAULT_SERVE_SIZES = (2000, 20000)


def declare_external_callees(module: Module) -> None:
    """Add declarations for every function referenced but not present in
    *module*, so its printed text parses stand-alone (delta modules clone
    single functions out of a larger corpus and keep its call operands)."""
    for func in list(module.functions):
        for inst in func.instructions():
            for operand in inst.operands:
                if (
                    isinstance(operand, Function)
                    and module.get_function(operand.name) is None
                ):
                    module.declare_function(operand.ftype, operand.name)


def build_delta_text(
    corpus: Module, fraction: float, seed: int, mutations: int = 2
) -> Tuple[str, List[str]]:
    """A delta module redefining a deterministic ~*fraction* of *corpus*'s
    functions as mutated variants; returns ``(text, changed_names)``."""
    defined = corpus.defined_functions()
    names = [f.name for f in defined]
    count = max(1, int(len(names) * fraction))
    rng = random.Random(seed)
    picked = sorted(rng.sample(range(len(names)), count))
    delta = Module("delta")
    for i in picked:
        make_variant(corpus.get_function(names[i]), names[i], rng, mutations, delta)
    declare_external_callees(delta)
    return print_module(delta), [names[i] for i in picked]


def _one_shot_merge(text: str) -> Tuple[str, int]:
    """The in-process equivalent of ``repro merge -s f3m`` (all defaults)."""
    module = parse_module(text, name="request")
    verify_module(module)
    pass_ = FunctionMergingPass(make_ranker("f3m"), PassConfig())
    report = pass_.run(module)
    return print_module(module), report.merges


def _best_of(repeats: int, fn) -> Tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


def _subprocess_env() -> Dict[str, str]:
    src = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def _serial_replay_identical(
    daemon: ServeDaemon,
    corpus_names: List[str],
    corpus_fps,
    delta_text: str,
) -> Tuple[bool, float]:
    """Replay the daemon's exact index op sequence on a plain LSHIndex and
    compare every live function's best match; also measure how often a
    from-scratch rebuild agrees (reported, not gated — tombstones occupy
    capped bucket windows that a rebuild never sees)."""
    config = MinHashConfig()
    encoding = EncodingOptions()
    db = daemon.db
    serial: LSHIndex = LSHIndex(
        rows=db._ROWS,
        bands=config.k // db._ROWS,
        bucket_cap=db._BUCKET_CAP,
        compact_ratio=db.config.compact_ratio,
    )
    serial.insert_batch(corpus_names, corpus_fps)
    delta = parse_module(delta_text, name="delta")
    ddef = delta.defined_functions()
    # apply_delta removes the changed names in sorted order, then
    # re-inserts them (freshly fingerprinted) in delta definition order.
    for name in sorted(f.name for f in ddef):
        serial.remove(name)
    fps1 = minhash_module(ddef, config, encoding)
    serial.insert_batch([f.name for f in ddef], fps1)

    snap = db.snapshot
    identical = True
    for name in snap.entries:
        if snap.index.best_match(name) != serial.best_match(name):
            identical = False
            break

    rebuild: LSHIndex = LSHIndex(
        rows=db._ROWS,
        bands=config.k // db._ROWS,
        bucket_cap=db._BUCKET_CAP,
        compact_ratio=db.config.compact_ratio,
    )
    post = parse_module(db.dump(), name="post")
    post_defined = post.defined_functions()
    rebuild.insert_batch(
        [f.name for f in post_defined], minhash_module(post_defined, config, encoding)
    )
    names = sorted(snap.entries)
    stride = max(1, len(names) // 1000)
    sample = names[::stride]
    agree = sum(
        1
        for name in sample
        if snap.index.best_match(name) == rebuild.best_match(name)
    )
    return identical, agree / len(sample) if sample else 1.0


def run_serve_bench(
    sizes: Optional[List[int]] = None,
    repeats: int = 3,
    delta_fraction: float = 0.01,
    workload: str = "serve",
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Run the serve suite; returns ``(rows, metadata)`` for bench JSON."""
    sizes = list(sizes) if sizes else list(DEFAULT_SERVE_SIZES)
    rows: List[Dict[str, object]] = []
    env = _subprocess_env()

    for size in sizes:
        module = build_workload(size, name=f"{workload}{size}")
        text = print_module(module)

        with tempfile.TemporaryDirectory(prefix="serve-bench-") as tmp:
            in_path = os.path.join(tmp, "in.ir")
            out_path = os.path.join(tmp, "out.ir")
            with open(in_path, "w", encoding="utf-8") as handle:
                handle.write(text)

            def cold_subprocess() -> str:
                proc = subprocess.run(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "merge",
                        in_path,
                        "-s",
                        "f3m",
                        "-o",
                        out_path,
                    ],
                    env=env,
                    capture_output=True,
                )
                if proc.returncode != 0:
                    raise RuntimeError(
                        f"one-shot merge failed: {proc.stderr.decode()[-500:]}"
                    )
                with open(out_path, "r", encoding="utf-8") as handle:
                    return handle.read()

            cold_subprocess_s, cold_text = _best_of(repeats, cold_subprocess)

        cold_inprocess_s, one_shot = _best_of(repeats, lambda: _one_shot_merge(text))
        one_shot_text, one_shot_merges = one_shot

        daemon = ServeDaemon(ServeConfig())
        client = ServeClient(daemon=daemon)

        warm_first_s, first = _best_of(1, lambda: client.merge(module=text))
        warm_steady_s, steady = _best_of(
            max(repeats, 3), lambda: client.merge(module=text)
        )
        warm_pipeline_s, pipeline = _best_of(
            repeats, lambda: client.merge(module=text, no_result_cache=True)
        )

        decisions_identical = (
            first["module"] == one_shot_text
            and first["module"] == cold_text
            and pipeline["module"] == one_shot_text
            and first["merges"] == one_shot_merges
        )

        # Incremental phase: corpus build, 1%-changed delta, full rebuild.
        corpus_fps = minhash_module(
            module.defined_functions(), MinHashConfig(), EncodingOptions()
        )
        corpus_names = [f.name for f in module.defined_functions()]
        submit_full_s, _ = _best_of(1, lambda: client.submit(module=text))
        delta_text, changed = build_delta_text(
            daemon.db.module, delta_fraction, seed=0xDE17A
        )
        delta_update_s, _ = _best_of(1, lambda: client.submit(module=delta_text))

        post_text = client.dump()["module"]
        rebuild_daemon = ServeDaemon(ServeConfig())
        rebuild_client = ServeClient(daemon=rebuild_daemon)
        full_rebuild_s, _ = _best_of(
            1, lambda: rebuild_client.submit(module=post_text)
        )

        serial_identical, rebuild_agreement = _serial_replay_identical(
            daemon, corpus_names, corpus_fps, delta_text
        )

        rows.append(
            {
                "size": size,
                "merges": first["merges"],
                "cold_subprocess_s": cold_subprocess_s,
                "cold_inprocess_s": cold_inprocess_s,
                "warm_first_s": warm_first_s,
                "warm_steady_s": warm_steady_s,
                "warm_pipeline_s": warm_pipeline_s,
                "warm_speedup": cold_subprocess_s / warm_steady_s,
                "pipeline_speedup": cold_subprocess_s / warm_pipeline_s,
                "submit_full_s": submit_full_s,
                "delta_functions": len(changed),
                "delta_update_s": delta_update_s,
                "full_rebuild_s": full_rebuild_s,
                "delta_speedup": full_rebuild_s / delta_update_s,
                "decisions_identical": decisions_identical,
                "serial_identical": serial_identical,
                "rebuild_agreement": rebuild_agreement,
            }
        )

    largest = rows[-1]
    metadata = {
        "sizes": sizes,
        "repeats": repeats,
        "delta_fraction": delta_fraction,
        "workload": workload,
        "headline": {
            "largest_size": largest["size"],
            "warm_speedup": largest["warm_speedup"],
            "pipeline_speedup": largest["pipeline_speedup"],
            "delta_speedup": largest["delta_speedup"],
            "decisions_identical": all(r["decisions_identical"] for r in rows),
            "serial_identical": all(r["serial_identical"] for r in rows),
            "rebuild_agreement": largest["rebuild_agreement"],
        },
    }
    return rows, metadata
