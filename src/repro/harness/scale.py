"""The corpus-scale sweep behind ``repro bench-perf --scale`` (ROADMAP item 2).

Every other benchmark in this repo holds the whole module in RAM; this one
opens the 10^5–10^6-function regime where that stops being an option and
the paper's adaptive t/b/r policy (Eq. 3/4) actually bends.  The sweep:

1. **generate** — builds a synthetic corpus once, in chunks of ``chunk``
   functions (``workloads/generator.py`` via ``build_workload``, fresh seed
   per chunk, no drivers), encoding each chunk and appending the encoded
   streams into one :class:`~repro.fingerprint.store.FingerprintStore` on
   disk.  IR is discarded chunk by chunk — corpus size never implies
   corpus-sized RAM.
2. Per size (a prefix of the corpus), under that size's
   :func:`~repro.search.adaptive.adaptive_parameters`:

   * **store_fingerprint** — re-minhash the encoded slices chunkwise into a
     per-size fingerprint store (each size has its own adaptive ``k``);
   * **store_index** (per shard count) — build a frozen
     :class:`~repro.search.sharded.ShardedLSHIndex` over the store and
     answer ``best_match`` for every row with the batched kernel;
   * **inram** — the status-quo contender: whole encoded corpus slice in
     RAM, ``minhash_encoded_batch`` in one shot, per-function
     ``MinHashFingerprint`` objects, a serial ``LSHIndex.insert_batch``,
     and a per-key ``best_match`` loop.

Each stage runs in its own forked child
(:func:`~repro.harness.rss.run_isolated`), so per-stage wall-clock *and*
per-stage peak RSS are kernel-accounted and mutually isolated; the parent
stays slim and all bulk data travels via the on-disk stores.  Stages
cross-check through digests: sha256 over the signature bytes (fingerprint
bit-identity) and over the ``(best, similarity)`` result arrays (decision
identity, serial loop vs sharded batch for every shard count).
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fingerprint.batch import encode_module, minhash_encoded_batch
from ..fingerprint.encoding import EncodingOptions
from ..fingerprint.minhash import MinHashConfig, MinHashFingerprint
from ..fingerprint.store import FingerprintStore
from ..search.adaptive import adaptive_parameters
from ..search.lsh import LSHIndex
from ..search.sharded import ShardedLSHIndex
from .rss import IsolatedRun, run_isolated

__all__ = ["run_scale_bench", "DEFAULT_SCALE_SIZES"]

DEFAULT_SCALE_SIZES = (2000, 20000, 200000)
_SCALE_SEED = 0x5CA1E


def _sha256_arrays(*arrays: np.ndarray) -> str:
    digest = hashlib.sha256()
    for array in arrays:
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _generate_corpus(
    corpus_dir: str, total: int, chunk: int, config: MinHashConfig, workload: str
) -> Dict[str, object]:
    """Child: build the corpus store chunk by chunk, IR discarded per chunk."""
    from ..workloads.suites import WorkloadConfig, build_workload

    store = FingerprintStore.create(corpus_dir, config, store_encoded=True)
    encoding = EncodingOptions()
    gen_s = 0.0
    encode_s = 0.0
    made = 0
    index = 0
    while made < total:
        want = min(chunk, total - made)
        t0 = time.perf_counter()
        module = build_workload(
            want, f"{workload}-{index}", WorkloadConfig(seed=_SCALE_SEED + index, drivers=0)
        )
        functions = module.defined_functions()[:want]
        gen_s += time.perf_counter() - t0
        t0 = time.perf_counter()
        flat, lens = encode_module(functions, encoding)
        store.append_encoded(flat, lens)
        encode_s += time.perf_counter() - t0
        made += len(functions)
        index += 1
    return {
        "functions": len(store),
        "instructions": int(store.stats()["encoded_total"]),
        "generate_s": gen_s,
        "encode_append_s": encode_s,
        "store": store.stats(),
    }


def _store_fingerprint_stage(
    corpus_dir: str, size_dir: str, size: int, chunk: int, config: MinHashConfig
) -> Dict[str, object]:
    """Child: stream encoded slices into a per-size fingerprint store."""
    corpus = FingerprintStore.open(corpus_dir)
    store = FingerprintStore.create(size_dir, config, store_encoded=False)
    minhash_s = 0.0
    for start in range(0, size, chunk):
        stop = min(start + chunk, size)
        flat, lens = corpus.encoded_slice(start, stop)
        t0 = time.perf_counter()
        store.append_encoded(flat, lens)
        minhash_s += time.perf_counter() - t0
    # Digest the store's signature matrix chunkwise off the memmap — the
    # matrix itself never becomes RAM-resident.
    digest = hashlib.sha256()
    for _start, _stop, values in store.iter_chunks(chunk):
        digest.update(np.ascontiguousarray(values).tobytes())
    return {
        "minhash_append_s": minhash_s,
        "values_sha256": digest.hexdigest(),
        "store": store.stats(),
    }


def _store_index_stage(
    size_dir: str,
    shards: int,
    build_workers: int,
    query_workers: int,
    rows: int,
    bands: int,
    bucket_cap: Optional[int],
) -> Dict[str, object]:
    """Child: frozen sharded index build + batched best_match over the store."""
    store = FingerprintStore.open(size_dir)
    shard_dir = os.path.join(size_dir, f"lsh-shards-{shards}")
    t0 = time.perf_counter()
    index = ShardedLSHIndex.from_store(
        store,
        rows=rows,
        bands=bands,
        bucket_cap=bucket_cap,
        shards=shards,
        workers=build_workers,
        shard_dir=shard_dir,
    )
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    best, sims = index.best_match_all(workers=query_workers)
    query_s = time.perf_counter() - t0
    return {
        "build_s": build_s,
        "query_s": query_s,
        "total_s": build_s + query_s,
        "decisions_sha256": _sha256_arrays(best, sims),
        "matched": int(np.count_nonzero(best >= 0)),
        "index_stats": index.index_stats(),
    }


def _inram_stage(
    corpus_dir: str,
    size: int,
    rows: int,
    bands: int,
    bucket_cap: Optional[int],
    config: MinHashConfig,
) -> Dict[str, object]:
    """Child: the fully RAM-resident reference path, serial LSHIndex."""
    corpus = FingerprintStore.open(corpus_dir)
    flat, lens = corpus.encoded_slice(0, size)
    flat = np.array(flat)  # pull the slice into RAM: this path is the
    lens = np.array(lens)  # in-memory contender, page cache doesn't count
    t0 = time.perf_counter()
    values, counts = minhash_encoded_batch(flat, lens, config)
    fingerprints = [
        MinHashFingerprint(values[i], config, int(counts[i])) for i in range(size)
    ]
    fingerprint_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    index: LSHIndex[int] = LSHIndex(rows=rows, bands=bands, bucket_cap=bucket_cap)
    index.insert_batch(list(range(size)), fingerprints)
    index_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    best = np.full(size, -1, dtype=np.int64)
    sims = np.zeros(size, dtype=np.float64)
    for i in range(size):
        match = index.best_match(i)
        if match is not None:
            best[i] = match[0]
            sims[i] = match[1]
    query_s = time.perf_counter() - t0
    return {
        "fingerprint_s": fingerprint_s,
        "index_s": index_s,
        "query_s": query_s,
        "total_s": fingerprint_s + index_s + query_s,
        "values_sha256": _sha256_arrays(values),
        "decisions_sha256": _sha256_arrays(best, sims),
        "matched": int(np.count_nonzero(best >= 0)),
        "index_stats": index.index_stats(),
    }


def _stage_row(run: IsolatedRun) -> Dict[str, object]:
    row = dict(run.result)
    row["seconds"] = run.seconds
    row["rss_baseline_kb"] = run.baseline_kb
    row["rss_peak_kb"] = run.peak_kb
    row["rss_delta_kb"] = run.delta_kb
    return row


def run_scale_bench(
    sizes: Sequence[int] = DEFAULT_SCALE_SIZES,
    chunk: int = 2000,
    shard_counts: Sequence[int] = (1, 4),
    shard_workers: int = 1,
    query_workers: int = 1,
    bucket_cap: Optional[int] = 100,
    workload: str = "scale",
    work_dir: Optional[str] = None,
    keep_work_dir: bool = False,
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """Rows + metadata for ``BENCH_scale.json``; see the module docstring.

    ``shard_workers`` controls the shard *build* pool (1 = run the
    identical shard worker inline — the honest default on a single-CPU
    box); ``query_workers`` likewise for the query fan-out.  Sizes are
    prefixes of one generated corpus, so generation cost is paid once.
    """
    sizes = sorted(set(int(s) for s in sizes))
    if not sizes:
        raise ValueError("at least one size required")
    total = sizes[-1]
    owns_work_dir = work_dir is None
    if owns_work_dir:
        work_dir = tempfile.mkdtemp(prefix="repro-scale-")
    os.makedirs(work_dir, exist_ok=True)
    corpus_dir = os.path.join(work_dir, "corpus")

    largest = adaptive_parameters(total)
    corpus_config = MinHashConfig(k=largest.fingerprint_size)

    rows: List[Dict[str, object]] = []
    try:
        gen_run = run_isolated(
            _generate_corpus, corpus_dir, total, chunk, corpus_config, workload
        )
        generation = _stage_row(gen_run)

        for size in sizes:
            params = adaptive_parameters(size)
            config = MinHashConfig(k=params.fingerprint_size)
            size_dir = os.path.join(work_dir, f"size-{size}")
            row: Dict[str, object] = {
                "size": size,
                "adaptive": {
                    "threshold": params.threshold,
                    "rows": params.rows,
                    "bands": params.bands,
                    "k": params.fingerprint_size,
                },
                "stages": {},
            }
            stages: Dict[str, Dict[str, object]] = row["stages"]

            fp_run = run_isolated(
                _store_fingerprint_stage, corpus_dir, size_dir, size, chunk, config
            )
            stages["store_fingerprint"] = _stage_row(fp_run)

            for shards in shard_counts:
                index_run = run_isolated(
                    _store_index_stage,
                    size_dir,
                    shards,
                    shard_workers,
                    query_workers,
                    params.rows,
                    params.bands,
                    bucket_cap,
                )
                stages[f"store_index_shards{shards}"] = _stage_row(index_run)

            inram_run = run_isolated(
                _inram_stage,
                corpus_dir,
                size,
                params.rows,
                params.bands,
                bucket_cap,
                config,
            )
            stages["inram"] = _stage_row(inram_run)

            inram = stages["inram"]
            row["fingerprints_bit_identical"] = (
                stages["store_fingerprint"]["values_sha256"] == inram["values_sha256"]
            )
            row["decisions_identical"] = {
                f"shards{shards}": (
                    stages[f"store_index_shards{shards}"]["decisions_sha256"]
                    == inram["decisions_sha256"]
                )
                for shards in shard_counts
            }
            row["store_peak_rss_kb"] = max(
                stage["rss_delta_kb"]
                for name, stage in stages.items()
                if name.startswith("store_")
            )
            row["inram_peak_rss_kb"] = inram["rss_delta_kb"]
            base = stages.get(f"store_index_shards{min(shard_counts)}")
            peak_shards = max(shard_counts)
            contender = stages.get(f"store_index_shards{peak_shards}")
            if base is not None and contender is not None and base is not contender:
                row["sharded_speedup"] = (
                    base["total_s"] / contender["total_s"]
                    if contender["total_s"] > 0
                    else 0.0
                )
            rows.append(row)
    finally:
        if owns_work_dir and not keep_work_dir:
            shutil.rmtree(work_dir, ignore_errors=True)

    largest_row = rows[-1]
    headline = {
        "largest_size": largest_row["size"],
        "fingerprints_bit_identical": all(r["fingerprints_bit_identical"] for r in rows),
        "decisions_identical": all(
            ok for r in rows for ok in r["decisions_identical"].values()
        ),
        "inram_peak_rss_kb": largest_row["inram_peak_rss_kb"],
        "store_peak_rss_kb": largest_row["store_peak_rss_kb"],
        "rss_ratio": (
            largest_row["store_peak_rss_kb"] / largest_row["inram_peak_rss_kb"]
            if largest_row["inram_peak_rss_kb"]
            else 0.0
        ),
        "sharded_speedup": largest_row.get("sharded_speedup"),
    }
    metadata = {
        "sizes": list(sizes),
        "chunk": chunk,
        "shard_counts": list(shard_counts),
        "shard_workers": shard_workers,
        "query_workers": query_workers,
        "bucket_cap": bucket_cap,
        "workload": workload,
        "seed": _SCALE_SEED,
        "cpu_count": os.cpu_count(),
        "generation": generation,
        "headline": headline,
        "protocol": (
            "one corpus generated in chunks into a memmap FingerprintStore; "
            "per size (a corpus prefix, adaptive t/b/r per Eq. 3/4): "
            "store_fingerprint re-minhashes encoded slices chunkwise into a "
            "per-size store; store_index_shardsN builds a frozen band-sharded "
            "LSH over the store (.npy shard files, memmapped) and answers "
            "best_match for every row with the batched kernel; inram is the "
            "RAM-resident reference (one-shot minhash, fingerprint objects, "
            "serial LSHIndex, per-key best_match loop).  Each stage is one "
            "forked child: seconds is child wall-clock, rss_delta_kb its "
            "VmHWM growth.  values_sha256 must match between "
            "store_fingerprint and inram (bit-identical fingerprints); "
            "decisions_sha256 must match between every store_index variant "
            "and inram (identical best-match decisions)."
        ),
    }
    return rows, metadata
