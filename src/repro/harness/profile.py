"""Pipeline profiler and the ``bench-perf`` performance benchmark.

Two layers:

* :func:`profile_pass` runs one merging configuration and folds the pass's
  stage accounting (:class:`~repro.merge.report.MergeReport` attempt times
  plus the ranker's preprocess breakdown) into a flat
  :class:`PipelineProfile` — wall-clock total and per-stage seconds for
  fingerprint / index / rank / align / codegen / staticcheck / validate / oracle /
  commit.
* :func:`fingerprint_microbench` and :func:`run_perf_bench` drive the
  batched-vs-per-function comparison the PR's headline claim rests on:
  identical fingerprints, identical merge decisions, and the speedup of the
  batched engine (module-wide vectorized MinHash + bulk LSH insertion,
  :func:`repro.fingerprint.batch.minhash_module` +
  :meth:`LSHIndex.insert_batch`) over the per-function reference path
  (``minhash_function`` + ``LSHIndex.insert`` per function).  ``repro
  bench-perf`` emits the result as ``BENCH_f3m_perf.json``.

Timings take the best of ``repeats`` runs — on a noisy shared box the
minimum is the stable estimator of the actual cost.
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fingerprint.batch import encode_module, minhash_encoded_batch, minhash_module
from ..fingerprint.cache import FingerprintCache
from ..fingerprint.encoding import EncodingOptions
from ..fingerprint.minhash import MinHashConfig, minhash_function
from ..ir.function import Function
from ..ir.module import Module
from ..merge.pass_ import FunctionMergingPass, PassConfig
from ..merge.report import MergeReport
from .experiments import make_ranker

# The corpus-scale sweep lives in its own module (it is store/shard-side,
# not pass-side) but is re-exported here: profile.py is the façade every
# bench entry point imports from.
from .scale import DEFAULT_SCALE_SIZES, run_scale_bench  # noqa: F401  (re-export)

__all__ = [
    "PipelineProfile",
    "profile_pass",
    "fingerprint_microbench",
    "alignment_microbench",
    "run_perf_bench",
    "run_attempt_bench",
    "run_scale_bench",
    "PERF_STAGES",
    "DEFAULT_SCALE_SIZES",
]

#: Stage keys of one profile, in pipeline order.
PERF_STAGES = (
    "fingerprint",
    "index",
    "rank",
    "bound",
    "align",
    "codegen",
    "staticcheck",
    "validate",
    "oracle",
    "commit",
)


@dataclass
class PipelineProfile:
    """Wall-clock cost of one pass run, split by pipeline stage."""

    strategy: str
    functions: int
    total_time: float
    stages: Dict[str, float] = field(default_factory=dict)
    merges: int = 0
    comparisons: int = 0
    size_reduction: float = 0.0
    cache_stats: Optional[Dict[str, object]] = None

    @property
    def accounted(self) -> float:
        """Seconds attributed to a named stage (≤ total_time; the rest is
        pass bookkeeping between stages)."""
        return sum(self.stages.values())

    def to_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "strategy": self.strategy,
            "functions": self.functions,
            "total_time": self.total_time,
            "merges": self.merges,
            "comparisons": self.comparisons,
            "size_reduction": self.size_reduction,
        }
        for stage in PERF_STAGES:
            row[f"stage_{stage}"] = self.stages.get(stage, 0.0)
        if self.cache_stats is not None:
            row["cache"] = dict(self.cache_stats)
        return row


def profile_from_report(report: MergeReport, ranker=None) -> PipelineProfile:
    """Fold a finished pass report into a :class:`PipelineProfile`.

    The preprocess total splits into fingerprint/index when the ranker
    tracked the split (the batched path does); otherwise it all counts as
    fingerprinting — for the per-function path the two are interleaved and
    inseparable.
    """
    breakdown = dict(ranker.preprocess_breakdown) if ranker is not None else {}
    stages = {
        "fingerprint": breakdown.get("fingerprint", report.preprocess_time),
        "index": breakdown.get("index", 0.0),
        "rank": sum(a.ranking_time for a in report.attempts),
        "bound": sum(a.bound_time for a in report.attempts),
        "align": sum(a.align_time for a in report.attempts),
        "codegen": sum(a.codegen_time for a in report.attempts),
        "staticcheck": sum(a.static_time for a in report.attempts),
        "validate": sum(a.validate_time for a in report.attempts),
        "oracle": sum(a.oracle_time for a in report.attempts),
        "commit": sum(a.update_time for a in report.attempts),
    }
    cache_stats = None
    cache = getattr(ranker, "cache", None)
    if cache is not None:
        cache_stats = cache.stats.to_dict()
    return PipelineProfile(
        strategy=report.strategy,
        functions=report.num_functions,
        total_time=report.total_time,
        stages=stages,
        merges=report.merges,
        comparisons=report.comparisons,
        size_reduction=report.size_reduction,
        cache_stats=cache_stats,
    )


def profile_pass(
    module: Module,
    strategy: str = "f3m",
    pass_config: Optional[PassConfig] = None,
    **ranker_kwargs,
) -> Tuple[PipelineProfile, MergeReport]:
    """Run one merging configuration over *module* and profile it.

    Mutates *module* (it runs the real pass).  Keyword arguments go to the
    ranker factory, e.g. ``batched=False`` or ``cache=FingerprintCache()``.
    """
    ranker = make_ranker(strategy, **ranker_kwargs)
    pass_ = FunctionMergingPass(ranker, pass_config or PassConfig(verify=False))
    report = pass_.run(module)
    return profile_from_report(report, ranker), report


# ---------------------------------------------------------------------------
# Batched-vs-per-function microbenchmark
# ---------------------------------------------------------------------------


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Minimum wall-clock of ``repeats`` runs, with the cyclic GC quiesced.

    Collecting before each rep and disabling the collector inside the timed
    region (standard benchmarking hygiene, cf. pyperf) keeps one run's
    garbage from being charged to the next; both engines are measured under
    the same rules.
    """
    return _best_of_paired({"t": fn}, repeats)["t"]


def _best_of_paired(
    fns: Dict[str, Callable[[], object]], repeats: int
) -> Dict[str, float]:
    """Best-of-``repeats`` for several workloads, timed in interleaved rounds.

    Machine speed drifts on timescales of seconds (host scheduling,
    frequency scaling), which poisons A-then-B timing: A's minimum can come
    from a fast window and B's from a slow one, skewing their ratio either
    way.  Running one rep of every workload per round means each round
    samples the same machine state for all of them, so the minima — and any
    ratio taken between them — stay comparable.
    """
    best = {name: float("inf") for name in fns}
    gc_was_enabled = gc.isenabled()
    for _ in range(max(1, repeats)):
        for name, fn in fns.items():
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                fn()
                best[name] = min(best[name], time.perf_counter() - t0)
            finally:
                if gc_was_enabled:
                    gc.enable()
    return best


def fingerprint_microbench(
    functions: Sequence[Function],
    config: Optional[MinHashConfig] = None,
    encoding: Optional[EncodingOptions] = None,
    repeats: int = 3,
) -> Dict[str, object]:
    """Timing + bit-identity of the batched engine vs the reference path.

    Three comparison levels, all over the same functions:

    * ``minhash`` — hashing alone, from already-encoded streams;
    * ``fingerprint`` — encode + hash (``minhash_module`` vs a
      ``minhash_function`` loop);
    * ``preprocess`` — the full engine: fingerprint + LSH index build
      (``MinHashLSHRanker`` batched vs per-function).  This is the path the
      merging pass actually runs, and the headline speedup.
    """
    config = config or MinHashConfig()
    encoding = encoding or EncodingOptions()
    functions = list(functions)

    flat, lens = encode_module(functions, encoding)

    def _preprocess(batched: bool):
        ranker = make_ranker("f3m", config=config, encoding=encoding, batched=batched)
        ranker.preprocess(functions)
        return ranker

    timings = _best_of_paired(
        {
            "minhash_batch": lambda: minhash_encoded_batch(flat, lens, config),
            "fp_batch": lambda: minhash_module(functions, config, encoding),
            "fp_loop": lambda: [minhash_function(f, config, encoding) for f in functions],
            "pre_batch": lambda: _preprocess(True),
            "pre_loop": lambda: _preprocess(False),
        },
        repeats,
    )
    t_minhash_batch = timings["minhash_batch"]
    t_fp_batch = timings["fp_batch"]
    t_fp_loop = timings["fp_loop"]
    t_pre_batch = timings["pre_batch"]
    t_pre_loop = timings["pre_loop"]

    batched_fps = minhash_module(functions, config, encoding)
    loop_fps = [minhash_function(f, config, encoding) for f in functions]
    identical = all(
        np.array_equal(a.values, b.values) and a.num_shingles == b.num_shingles
        for a, b in zip(batched_fps, loop_fps)
    )

    return {
        "functions": len(functions),
        "instructions": int(lens.sum()),
        "minhash_batched_s": t_minhash_batch,
        "fingerprint_batched_s": t_fp_batch,
        "fingerprint_per_function_s": t_fp_loop,
        "preprocess_batched_s": t_pre_batch,
        "preprocess_per_function_s": t_pre_loop,
        "speedup_fingerprint": t_fp_loop / t_fp_batch if t_fp_batch > 0 else 0.0,
        "speedup_preprocess": t_pre_loop / t_pre_batch if t_pre_batch > 0 else 0.0,
        "bit_identical": bool(identical),
    }


# ---------------------------------------------------------------------------
# The bench-perf suite
# ---------------------------------------------------------------------------


def _decisions(report: MergeReport) -> List[Tuple[str, Optional[str], str]]:
    """The merge decisions of a run, in a comparable shape."""
    return [(a.function, a.candidate, str(a.outcome)) for a in report.attempts]


# ---------------------------------------------------------------------------
# Attempt-stage benchmark: vectorized alignment engine vs pure aligners
# ---------------------------------------------------------------------------


def _alignment_shape(alignment) -> Tuple:
    """A :class:`FunctionAlignment` reduced to comparable indices.

    Blocks and instructions are identified by their position within their
    function (local value names may be empty for void instructions), so
    two alignments of the same function pair compare equal exactly when
    they made the same decisions.
    """
    from ..alignment.model import SharedSegment

    block_index_a = {id(b): k for k, b in enumerate(alignment.function_a.blocks)}
    block_index_b = {id(b): k for k, b in enumerate(alignment.function_b.blocks)}
    inst_index_a = {
        id(inst): k for k, inst in enumerate(alignment.function_a.instructions())
    }
    inst_index_b = {
        id(inst): k for k, inst in enumerate(alignment.function_b.instructions())
    }
    pairs = []
    for pair in alignment.block_pairs:
        segments = []
        for seg in pair.segments:
            if isinstance(seg, SharedSegment):
                segments.append(
                    ("S", tuple((inst_index_a[id(x)], inst_index_b[id(y)]) for x, y in seg.pairs))
                )
            else:
                segments.append(
                    (
                        "P",
                        tuple(inst_index_a[id(x)] for x in seg.left),
                        tuple(inst_index_b[id(y)] for y in seg.right),
                    )
                )
        pairs.append(
            (block_index_a[id(pair.block_a)], block_index_b[id(pair.block_b)], tuple(segments))
        )
    return (
        tuple(pairs),
        tuple(block_index_a[id(b)] for b in alignment.unmatched_a),
        tuple(block_index_b[id(b)] for b in alignment.unmatched_b),
    )


def alignment_microbench(
    functions: Sequence[Function],
    strategy: str = "linear",
    repeats: int = 3,
) -> Dict[str, object]:
    """Timing + bit-identity of the batched alignment engine vs the pure path.

    Aligns every consecutive function pair three ways, interleaved:

    * ``pure`` — :func:`repro.alignment.hyfm_blocks.align_functions`,
      exactly what the pass runs with ``batch_alignment=False`` (minus its
      block-fingerprint memo, which only lives inside a pass);
    * ``cold`` — a fresh :class:`BatchAlignmentEngine` per repeat, paying
      encoding, content keys and cache fills;
    * ``warm`` — one persistent engine, the steady state the merging pass
      actually sees (the engine is shared across all attempts of a pass,
      remerge rounds and partition passes), where the plan cache replays
      whole function-pair decisions.

    The headline speedup is ``pure / warm``; ``pure / cold`` shows the
    one-time content-registration overhead.
    """
    from ..alignment.batch import BatchAlignmentEngine
    from ..alignment.hyfm_blocks import align_functions as pure_align

    functions = list(functions)
    pairs = [(functions[i], functions[i + 1]) for i in range(len(functions) - 1)]

    def run_pure():
        return [pure_align(a, b, strategy=strategy) for a, b in pairs]

    def run_cold():
        engine = BatchAlignmentEngine(strategy=strategy)
        return [engine.align_functions(a, b) for a, b in pairs]

    warm_engine = BatchAlignmentEngine(strategy=strategy)

    def run_warm():
        return [warm_engine.align_functions(a, b) for a, b in pairs]

    run_warm()  # populate memos + caches; timed reps hit the plan cache

    timings = _best_of_paired(
        {"pure": run_pure, "cold": run_cold, "warm": run_warm}, repeats
    )

    pure_alignments = run_pure()
    cold_alignments = run_cold()
    warm_alignments = run_warm()
    identical = all(
        _alignment_shape(p) == _alignment_shape(c) == _alignment_shape(w)
        for p, c, w in zip(pure_alignments, cold_alignments, warm_alignments)
    )

    return {
        "strategy": strategy,
        "functions": len(functions),
        "pairs": len(pairs),
        "pure_s": timings["pure"],
        "engine_cold_s": timings["cold"],
        "engine_warm_s": timings["warm"],
        "speedup_cold": timings["pure"] / timings["cold"] if timings["cold"] > 0 else 0.0,
        "speedup_warm": timings["pure"] / timings["warm"] if timings["warm"] > 0 else 0.0,
        "bit_identical": bool(identical),
        "plan_cache": warm_engine.plans.stats.to_dict(),
        "block_cache": warm_engine.cache.stats.to_dict(),
    }


def _merged_pairs(report: MergeReport) -> set:
    return {
        (a.function, a.candidate) for a in report.attempts if a.outcome == "merged"
    }


def run_attempt_bench(
    sizes: Sequence[int] = (200, 600, 2000),
    repeats: int = 3,
    workload: str = "perf",
    micro_repeats: Optional[int] = None,
    sweep_partitions: int = 4,
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """The ``bench-perf --attempts`` suite for ``BENCH_attempt_perf.json``.

    Per workload size:

    * the alignment microbenchmark (pure vs engine, linear and NW), the
      headline batched-vs-pure alignment speedup;
    * end-to-end equivalence checks on the full pass — engine vs pure
      path, bounded vs unbounded, cold vs prewarmed engine — each
      comparing the final printed module bit-for-bit;
    * bound soundness: the pairs ``rejected_bound`` skipped, intersected
      with the pairs the *unbounded* pipeline merged (must be empty);
    * a serial-vs-parallel :func:`repro.merge.partitioned.partition_sweep`
      digest comparison;
    * a profiled bounded+batched pass with the bound/align/codegen stage
      split.
    """
    from ..alignment.batch import BatchAlignmentEngine
    from ..ir.printer import print_module
    from ..merge.partitioned import partition_sweep
    from ..workloads.suites import build_workload

    if micro_repeats is None:
        micro_repeats = repeats
    rows: List[Dict[str, object]] = []
    headline: Dict[str, object] = {}
    for size in sizes:

        def fresh() -> Module:
            return build_workload(size, workload)

        module = fresh()
        functions = module.defined_functions()
        micro = {
            strategy: alignment_microbench(functions, strategy, micro_repeats)
            for strategy in ("linear", "nw")
        }
        row: Dict[str, object] = {
            "workload": workload,
            "size": size,
            "alignment_micro": micro,
        }

        def run_pass(config: PassConfig, engine=None) -> Tuple[str, MergeReport]:
            mod = fresh()
            ranker = make_ranker("f3m")
            pass_ = FunctionMergingPass(ranker, config, alignment_engine=engine)
            report = pass_.run(mod)
            return print_module(mod), report

        # Engine vs pure path (bound off on both sides so the attempt
        # streams match attempt-for-attempt).
        text_engine, rep_engine = run_pass(
            PassConfig(verify=False, prealign_bound=False, batch_alignment=True)
        )
        text_pure, rep_pure = run_pass(
            PassConfig(verify=False, prealign_bound=False, batch_alignment=False)
        )
        row["engine_identical"] = (
            text_engine == text_pure and _decisions(rep_engine) == _decisions(rep_pure)
        )

        # Bounded vs unbounded: same merges, same final module, and the
        # bound never rejects a pair the unbounded pipeline merged.
        text_bound, rep_bound = run_pass(
            PassConfig(verify=False, prealign_bound=True, batch_alignment=True)
        )
        rejected = {
            (a.function, a.candidate)
            for a in rep_bound.attempts
            if a.outcome == "rejected_bound"
        }
        row["bounded_identical"] = text_bound == text_engine
        row["rejected_bound"] = len(rejected)
        row["bound_unsound_rejections"] = sorted(
            rejected & _merged_pairs(rep_engine)
        )
        row["attempted_alignments_unbounded"] = sum(
            1 for a in rep_engine.attempts if a.align_time > 0.0
        )
        row["attempted_alignments_bounded"] = sum(
            1 for a in rep_bound.attempts if a.align_time > 0.0
        )

        # Cold vs prewarmed engine: a pass through an engine warmed on an
        # identical module must produce a bit-identical module (the cache
        # hit path changes nothing but time).
        warm_engine = BatchAlignmentEngine()
        run_pass(PassConfig(verify=False, batch_alignment=True), engine=warm_engine)
        hits_before = warm_engine.cache.stats.hits + warm_engine.plans.stats.hits
        text_cached, _rep_cached = run_pass(
            PassConfig(verify=False, batch_alignment=True), engine=warm_engine
        )
        hits_after = warm_engine.cache.stats.hits + warm_engine.plans.stats.hits
        row["cached_identical"] = text_cached == text_bound
        row["cache_hits_during_warm_run"] = hits_after - hits_before

        # Serial vs parallel partition sweep over the same snapshot.
        sweep_module = fresh()
        serial = partition_sweep(sweep_module, sweep_partitions, workers=1)
        parallel = partition_sweep(
            sweep_module, sweep_partitions, workers=sweep_partitions
        )
        row["sweep_digest_identical"] = serial.digest() == parallel.digest()
        row["sweep_merges"] = serial.merges
        row["sweep_serial_s"] = serial.total_time
        row["sweep_parallel_s"] = parallel.total_time

        # Stage split of the production configuration (bounded + batched).
        best_profile: Optional[PipelineProfile] = None
        for _ in range(max(1, repeats)):
            mod = fresh()
            profile, _report = profile_pass(mod, "f3m")
            if best_profile is None or profile.total_time < best_profile.total_time:
                best_profile = profile
        row["f3m_profile"] = best_profile.to_row()

        rows.append(row)
        headline = {
            "size": size,
            "alignment_speedup": micro["linear"]["speedup_warm"],
            "alignment_speedup_nw": micro["nw"]["speedup_warm"],
            "alignment_bit_identical": micro["linear"]["bit_identical"]
            and micro["nw"]["bit_identical"],
            "engine_identical": row["engine_identical"],
            "bounded_identical": row["bounded_identical"],
            "cached_identical": row["cached_identical"],
            "sweep_digest_identical": row["sweep_digest_identical"],
            "bound_sound": not row["bound_unsound_rejections"],
        }

    metadata: Dict[str, object] = {
        "workload": workload,
        "repeats": repeats,
        "micro_repeats": micro_repeats,
        "sweep_partitions": sweep_partitions,
        "cpu_count": os.cpu_count(),
        "headline": headline,
        "alignment_speedup_definition": (
            "pure align_functions time / warm BatchAlignmentEngine time over "
            "all consecutive function pairs at the largest size, best of "
            "`micro_repeats` interleaved runs; warm is the engine's steady "
            "state in the pass (shared across attempts, remerge rounds and "
            "partition passes), speedup_cold in alignment_micro isolates "
            "first-contact cost including encoding and cache fills"
        ),
    }
    return rows, metadata


def run_perf_bench(
    sizes: Sequence[int] = (100, 500, 1000),
    repeats: int = 3,
    workload: str = "perf",
    workers: Optional[int] = None,
    micro_repeats: Optional[int] = None,
) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """The ``bench-perf`` suite: rows + metadata for ``BENCH_f3m_perf.json``.

    Per workload size: the fingerprint microbenchmark, profiled pass runs
    for ExhaustiveRanker (HyFM), F3M per-function (static config, the
    pre-batching engine), F3M batched and F3M adaptive, a cached remerge
    run (same module fingerprinted again through a warm
    :class:`FingerprintCache`), and a batched-vs-per-function merge-decision
    equivalence check.

    ``micro_repeats`` oversamples the microbenchmark alone (defaults to
    ``repeats``): its sub-100ms timed regions need more best-of-N samples
    than the multi-second pass profiles to reach their floor on a machine
    with scheduling jitter.
    """
    from ..workloads.suites import build_workload

    if micro_repeats is None:
        micro_repeats = repeats
    rows: List[Dict[str, object]] = []
    headline: Dict[str, object] = {}
    for size in sizes:

        def fresh() -> Tuple[Module, List[Function]]:
            module = build_workload(size, workload)
            return module, module.defined_functions()

        module, functions = fresh()
        micro = fingerprint_microbench(functions, repeats=micro_repeats)
        row: Dict[str, object] = {"workload": workload, "size": size, "micro": micro}

        profiles: Dict[str, PipelineProfile] = {}
        for label, strategy, kwargs in (
            ("hyfm", "hyfm", {}),
            ("f3m-per-function", "f3m", {"batched": False}),
            ("f3m-batched", "f3m", {}),
            ("f3m-adaptive", "f3m-adaptive", {}),
        ):
            best_profile: Optional[PipelineProfile] = None
            for _ in range(max(1, repeats)):
                mod, _ = fresh()
                profile, _report = profile_pass(mod, strategy, **kwargs)
                if best_profile is None or profile.total_time < best_profile.total_time:
                    best_profile = profile
            profiles[label] = best_profile
            row[label] = best_profile.to_row()

        # Cached remerge: fingerprint the same module again through a warm
        # cache — every lookup hits.
        cache = FingerprintCache()
        mod, funcs = fresh()
        minhash_module(funcs, MinHashConfig(), cache=cache)
        t_warm = _best_of(
            lambda: minhash_module(funcs, MinHashConfig(), cache=cache), repeats
        )
        row["cache_remerge"] = {
            "warm_fingerprint_s": t_warm,
            **cache.stats.to_dict(),
        }

        # Merge decisions must be identical batched vs per-function.
        mod_a, _ = fresh()
        _, report_a = profile_pass(mod_a, "f3m", batched=True)
        mod_b, _ = fresh()
        _, report_b = profile_pass(mod_b, "f3m", batched=False)
        row["decisions_identical"] = _decisions(report_a) == _decisions(report_b)
        row["speedup_vs_hyfm"] = (
            profiles["hyfm"].total_time / profiles["f3m-batched"].total_time
            if profiles["f3m-batched"].total_time > 0
            else 0.0
        )
        rows.append(row)
        headline = {
            "size": size,
            "fingerprint_speedup": micro["speedup_preprocess"],
            "bit_identical": micro["bit_identical"],
            "decisions_identical": row["decisions_identical"],
        }

    metadata: Dict[str, object] = {
        "workload": workload,
        "repeats": repeats,
        "micro_repeats": micro_repeats,
        "workers": workers,
        "cpu_count": os.cpu_count(),
        "headline": headline,
        "fingerprint_speedup_definition": (
            "speedup_preprocess at the largest size: per-function engine "
            "(minhash_function + LSHIndex.insert per function) vs batched "
            "engine (minhash_module + LSHIndex.insert_batch), best of "
            "`repeats` runs each; speedup_fingerprint isolates encoding+"
            "hashing without the index build"
        ),
    }
    return rows, metadata
