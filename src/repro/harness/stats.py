"""Statistics helpers for the experiment harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["pearson", "histogram2d", "binned_sums", "mean_ci95"]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 for degenerate inputs)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size < 2 or float(x.std()) == 0.0 or float(y.std()) == 0.0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def histogram2d(
    xs: Sequence[float], ys: Sequence[float], cell: float = 0.01
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Discretize the [0,1]² space into ``cell``-sized squares (Figs. 4/10).

    Returns (counts, x_edges, y_edges).
    """
    bins = int(round(1.0 / cell))
    counts, xe, ye = np.histogram2d(
        np.asarray(xs, dtype=float),
        np.asarray(ys, dtype=float),
        bins=bins,
        range=[[0.0, 1.0], [0.0, 1.0]],
    )
    return counts, xe, ye


def binned_sums(
    keys: Sequence[float],
    values: Sequence[float],
    bins: int = 10,
    lo: float = 0.0,
    hi: float = 1.0,
) -> List[Tuple[float, float]]:
    """Sum *values* grouped by which bin their key falls in (Figs. 6/9).

    Returns ``[(bin_left_edge, sum), ...]`` for all bins.
    """
    edges = np.linspace(lo, hi, bins + 1)
    sums = np.zeros(bins)
    for key, value in zip(keys, values):
        idx = min(int((key - lo) / (hi - lo) * bins), bins - 1)
        idx = max(idx, 0)
        sums[idx] += value
    return list(zip(edges[:-1].tolist(), sums.tolist()))


def mean_ci95(samples: Sequence[float]) -> Tuple[float, float]:
    """Mean and 95% confidence half-interval (normal approximation)."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return 0.0, 0.0
    if arr.size == 1:
        return float(arr[0]), 0.0
    half = 1.96 * float(arr.std(ddof=1)) / (arr.size**0.5)
    return float(arr.mean()), half
