"""Command-line interface.

Drives the library end to end from a shell::

    python -m repro compile prog.mc -o prog.ll     # compile MiniC source
    python -m repro generate -n 500 -o prog.ll      # synthetic workload
    python -m repro stats prog.ll                   # module statistics
    python -m repro merge prog.ll -s f3m -o out.ll  # run function merging
    python -m repro lint prog.ll --json             # static analysis report
    python -m repro run out.ll --entry driver -a 5  # interpret an entry
    python -m repro compare -n 800                  # HyFM vs F3M shootout
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
from typing import Dict, List, Optional

from .analysis.size import module_size
from .diagnostics import Severity, has_errors
from .faults import FAULT_STAGES, FaultInjector
from .harness.experiments import make_ranker
from .harness.table import format_outcome_table, format_table
from .ir.interp import Interpreter
from .ir.module import Module
from .ir.parser import parse_module
from .ir.printer import print_module
from .ir.verifier import verify_module
from .merge.pass_ import FunctionMergingPass, PassConfig
from .merge.identical import merge_identical_functions
from .obs import trace as obs_trace
from .obs.manifest import (
    build_merge_manifest,
    collect_pass_telemetry,
    diff_manifests,
    load_manifest,
    render_manifest,
    render_manifest_diff,
    save_manifest,
)
from .obs.metrics import Registry
from .staticcheck.checkers import all_checkers
from .staticcheck.lint import lint_module
from .transforms.pipeline import optimize_module
from .workloads.suites import build_workload

__all__ = ["main", "lint_main"]


def _load(path: str) -> Module:
    with open(path, "r", encoding="utf-8") as handle:
        module = parse_module(handle.read(), name=path)
    verify_module(module)
    return module


def _save(module: Module, path: Optional[str]) -> None:
    text = print_module(module)
    if path is None or path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)


def _cmd_generate(args: argparse.Namespace) -> int:
    module = build_workload(args.functions, name="generated")
    for func in module.defined_functions():
        func.uniquify_names()
    _save(module, args.output)
    print(
        f"generated {len(module.defined_functions())} functions, "
        f"{module.num_instructions} instructions, "
        f"{module_size(module)} modelled bytes",
        file=sys.stderr,
    )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from .frontend import compile_source
    from .transforms.mem2reg import promote_module

    with open(args.source, "r", encoding="utf-8") as handle:
        module = compile_source(handle.read(), module_name=args.source)
    if not args.no_mem2reg:
        promote_module(module)
    if args.optimize:
        optimize_module(module, drop_dead_functions=False)
    verify_module(module)
    _save(module, args.output)
    print(
        f"compiled {len(module.defined_functions())} functions, "
        f"{module.num_instructions} instructions",
        file=sys.stderr,
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    module = _load(args.module)
    defined = module.defined_functions()
    rows = [
        ("functions (defined)", len(defined)),
        ("functions (declared)", len(module) - len(defined)),
        ("instructions", module.num_instructions),
        ("basic blocks", sum(len(f.blocks) for f in defined)),
        ("modelled size (bytes)", module_size(module)),
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_merge_partitioned(args: argparse.Namespace, module: Module) -> None:
    """ThinLTO-style merging: partition-local sweeps, optionally followed
    by the phase-2 optimistic cross-partition reconciliation."""
    import functools

    from .merge.partitioned import optimistic_sweep, partitioned_merging

    ranker_factory = functools.partial(make_ranker, args.strategy)
    config = PassConfig(
        threshold=args.threshold,
        verify=not args.no_verify,
        static_check=args.static_check,
        validate=args.validate,
        oracle=args.oracle,
        on_error=args.on_error,
        reconcile=args.reconcile,
    )
    if not args.reconcile:
        report = partitioned_merging(
            module, args.partitions, ranker_factory, config, workers=args.workers
        )
        print(
            f"partitioned merging ({args.partitions} partitions): "
            f"{report.merges} merges, size {report.size_before} -> "
            f"{report.size_after} ({report.size_reduction:.1%} reduction), "
            f"{report.cross_partition_candidates} cross-partition candidates lost",
            file=sys.stderr,
        )
        return
    faults = FaultInjector.parse(args.inject_fault) if args.inject_fault else None
    sweep = optimistic_sweep(
        module,
        args.partitions,
        ranker_factory,
        config,
        workers=args.workers,
        faults=faults,
    )
    rc = sweep.reconcile
    print(
        f"optimistic sweep ({args.partitions} partitions, {sweep.workers} workers): "
        f"{rc.replay_merges} partition-local merges replayed "
        f"({rc.replay_diverged} diverged), "
        f"{rc.recovered_pairs} cross-partition pairs recovered "
        f"(+{rc.recovered_saving} bytes saved), "
        f"conflicts {rc.conflicts_resolved} resolved / "
        f"{rc.conflicts_skipped} skipped, "
        f"size {rc.size_phase1} -> {rc.size_after} "
        f"(recovered delta {rc.recovered_size_delta})",
        file=sys.stderr,
    )
    if args.metrics or args.manifest or args.trace:
        import time as _time

        from .obs.manifest import RunManifest, git_revision, module_digest

        manifest = RunManifest(
            kind="reconcile",
            strategy=args.strategy,
            config={
                "partitions": args.partitions,
                "workers": sweep.workers,
                "threshold": config.threshold,
                "reconcile": True,
            },
            git_rev=git_revision(),
            created_unix=_time.time(),
            module_name=args.module,
            module_digest=module_digest(module),
            functions=sum(r.num_functions for r in sweep.results),
            merges=rc.replay_merges + rc.recovered_pairs,
            size_before=sum(r.size_before for r in sweep.results),
            size_after=rc.size_after,
            total_time=sweep.total_time + rc.elapsed,
            metrics={
                "reconcile": {
                    "cross_candidates": rc.cross_candidates,
                    "attempted": rc.attempted,
                    "recovered_pairs": rc.recovered_pairs,
                    "recovered_saving": rc.recovered_saving,
                    "recovered_size_delta": rc.recovered_size_delta,
                    "conflicts_considered": rc.conflicts_considered,
                    "conflicts_resolved": rc.conflicts_resolved,
                    "conflicts_skipped": rc.conflicts_skipped,
                    "rollbacks": rc.rollbacks,
                    "reapplied": rc.reapplied,
                    "replay_merges": rc.replay_merges,
                    "replay_diverged": rc.replay_diverged,
                }
            },
        )
        manifest_path = args.manifest or "run-manifest.json"
        save_manifest(manifest, manifest_path)
        print(f"wrote manifest {manifest_path}", file=sys.stderr)
        if args.metrics:
            print(render_manifest(manifest), file=sys.stderr)


def _cmd_merge(args: argparse.Namespace) -> int:
    module = _load(args.module)
    if args.strategy == "identical":
        report = merge_identical_functions(module)
        print(
            f"identical merging: {report.groups} groups, "
            f"{report.functions_removed} functions removed, "
            f"{report.call_sites_rewritten} call sites rewritten",
            file=sys.stderr,
        )
    elif args.partitions:
        _cmd_merge_partitioned(args, module)
    else:
        ranker = make_ranker(args.strategy)
        config = PassConfig(
            threshold=args.threshold,
            verify=not args.no_verify,
            static_check=args.static_check,
            validate=args.validate,
            oracle=args.oracle,
            on_error=args.on_error,
        )
        faults = (
            FaultInjector.parse(args.inject_fault) if args.inject_fault else None
        )
        # Observability: --trace streams spans to a JSONL file, --metrics
        # renders the run manifest to stderr; either one (or an explicit
        # --manifest PATH) also writes the manifest JSON.
        want_manifest = bool(args.metrics or args.manifest or args.trace)
        registry = Registry() if want_manifest else None
        pass_ = FunctionMergingPass(ranker, config, faults=faults, metrics=registry)
        if args.trace:
            tracer = obs_trace.Tracer(sink=args.trace)
            with tracer.install():
                merge_report = pass_.run(module)
        else:
            merge_report = pass_.run(module)
        print(merge_report.summary(), file=sys.stderr)
        print(format_outcome_table(merge_report.outcome_counts()), file=sys.stderr)
        for att in merge_report.contained_failures():
            print(f"contained failure: @{att.function} ({att.error})", file=sys.stderr)
        if want_manifest:
            collect_pass_telemetry(pass_, merge_report, registry)
            manifest = build_merge_manifest(
                merge_report,
                ranker,
                config,
                module,
                registry,
                module_name=args.module,
            )
            manifest_path = args.manifest or "run-manifest.json"
            save_manifest(manifest, manifest_path)
            print(f"wrote manifest {manifest_path}", file=sys.stderr)
            if args.metrics:
                print(render_manifest(manifest), file=sys.stderr)
    if args.optimize:
        optimize_module(module, drop_dead_functions=False)
    verify_module(module)
    _save(module, args.output)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.list_checkers:
        rows = [(c.name, c.scope, c.description) for c in all_checkers()]
        print(format_table(["checker", "scope", "description"], rows))
        return 0
    if args.module is None:
        print("error: module path required (or --list-checkers)", file=sys.stderr)
        return 2
    # Parse without verifying: the linter is the judge here, and it must be
    # able to report on modules the verifier would reject.
    with open(args.module, "r", encoding="utf-8") as handle:
        module = parse_module(handle.read(), name=args.module)
    checkers = args.checkers.split(",") if args.checkers else None
    if checkers is not None:
        # Unknown checker names are a hard usage error, not a silent no-op:
        # a typo'd --checkers list would otherwise "pass" by running nothing.
        known = [c.name for c in all_checkers()]
        for name in checkers:
            if name not in known:
                hint = difflib.get_close_matches(name, known, n=1)
                suggestion = f" (did you mean {hint[0]!r}?)" if hint else ""
                print(
                    f"error: unknown checker {name!r}{suggestion}; "
                    f"known checkers: {', '.join(known)}",
                    file=sys.stderr,
                )
                return 2
    diagnostics = lint_module(module, checkers)
    if args.min_severity is not None:
        floor = Severity.parse(args.min_severity)
        diagnostics = [d for d in diagnostics if d.severity >= floor]
    if args.json:
        payload = {
            "module": args.module,
            "checkers": checkers or [c.name for c in all_checkers()],
            "diagnostics": [d.to_dict() for d in diagnostics],
            "counts": {
                str(severity): sum(1 for d in diagnostics if d.severity is severity)
                for severity in Severity
            },
        }
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for diag in diagnostics:
            print(str(diag))
        errors = sum(1 for d in diagnostics if d.severity >= Severity.ERROR)
        warnings = sum(1 for d in diagnostics if d.severity == Severity.WARNING)
        print(
            f"{len(diagnostics)} diagnostics ({errors} errors, {warnings} warnings)",
            file=sys.stderr,
        )
    return 1 if has_errors(diagnostics) else 0


def _cmd_run(args: argparse.Namespace) -> int:
    module = _load(args.module)
    func = module.get_function(args.entry)
    if func is None or func.is_declaration:
        print(f"error: no defined function @{args.entry}", file=sys.stderr)
        return 1
    call_args: List[object] = []
    for raw, param in zip(args.args, func.ftype.params):
        call_args.append(float(raw) if param.is_float else int(raw))
    if len(call_args) != len(func.args):
        print(
            f"error: @{args.entry} takes {len(func.args)} arguments",
            file=sys.stderr,
        )
        return 1
    result = Interpreter(fuel=args.fuel).run(func, call_args)
    print(f"result: {result.value}")
    print(f"instructions executed: {result.instructions_executed}", file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    for strategy in ("hyfm", "f3m", "f3m-adaptive"):
        module = build_workload(args.functions, name="compare")
        ranker = make_ranker(strategy)
        report = FunctionMergingPass(ranker, PassConfig(verify=False)).run(module)
        rows.append(
            (
                strategy,
                f"{report.size_reduction:.2%}",
                report.merges,
                f"{report.comparisons:,}",
                f"{report.merge_time:.2f}s",
            )
        )
    print(
        format_table(
            ["strategy", "size reduction", "merges", "comparisons", "pass time"],
            rows,
        )
    )
    return 0


def _write_bench_manifest(
    path: str, name: str, rows: List[dict], metadata: dict
) -> None:
    """A bench run as a manifest: headline + stage table of the largest size."""
    import time as _time

    from .obs.manifest import RunManifest, git_revision

    largest = rows[-1] if rows else {}
    profile_row = largest.get("f3m_profile") or largest.get("f3m-batched") or {}
    stages = {
        key[len("stage_") :]: value
        for key, value in profile_row.items()
        if key.startswith("stage_")
    }
    manifest = RunManifest(
        kind=f"bench-{name}",
        strategy=str(profile_row.get("strategy", "f3m")),
        config={
            k: v
            for k, v in metadata.items()
            if isinstance(v, (int, float, str, bool, type(None)))
        },
        git_rev=git_revision(),
        created_unix=_time.time(),
        functions=int(largest.get("size", 0)),
        merges=int(profile_row.get("merges", 0)),
        comparisons=int(profile_row.get("comparisons", 0)),
        total_time=float(profile_row.get("total_time", 0.0)),
        stages=stages,
        metrics={"headline": dict(metadata.get("headline", {}))},
    )
    save_manifest(manifest, path)
    print(f"wrote manifest {path}", file=sys.stderr)


def _cmd_bench_perf(args: argparse.Namespace) -> int:
    from .harness.bench import write_bench_json
    from .harness.profile import run_attempt_bench, run_perf_bench

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    if args.reconcile:
        from .harness.reconcile_bench import (
            DEFAULT_RECONCILE_SIZES,
            run_reconcile_bench,
        )

        if args.sizes == "100,500,1000":  # the fingerprint-bench default
            sizes = list(DEFAULT_RECONCILE_SIZES)
        output = args.output
        if output == "BENCH_f3m_perf.json":  # default untouched: reconcile name
            output = "BENCH_reconcile.json"
        rows, metadata = run_reconcile_bench(
            sizes=sizes,
            partitions=args.partitions,
            repeats=args.repeats,
            workload=args.workload if args.workload != "perf" else "reconcile",
        )
        write_bench_json(output, "reconcile", rows, metadata)
        headline = metadata["headline"]
        print(f"wrote {output}")
        print(
            f"largest size {headline['largest_size']}: "
            f"{headline['recovered_pairs']} cross-partition pairs recovered, "
            f"size delta {headline['recovered_size_delta']} bytes "
            f"({headline['extra_reduction']:.2%} extra reduction over "
            f"partition-local), "
            f"decisions_deterministic={headline['decisions_deterministic']}, "
            f"phase1_size_identical={headline['phase1_size_identical']}"
        )
        return 0
    if args.serve:
        from .harness.serve_bench import DEFAULT_SERVE_SIZES, run_serve_bench

        if args.sizes == "100,500,1000":  # the fingerprint-bench default
            sizes = list(DEFAULT_SERVE_SIZES)
        output = args.output
        if output == "BENCH_f3m_perf.json":  # default untouched: serve name
            output = "BENCH_serve.json"
        rows, metadata = run_serve_bench(
            sizes=sizes,
            repeats=args.repeats,
            delta_fraction=args.delta_fraction,
            workload=args.workload if args.workload != "perf" else "serve",
        )
        write_bench_json(output, "serve", rows, metadata)
        headline = metadata["headline"]
        print(f"wrote {output}")
        print(
            f"largest size {headline['largest_size']}: "
            f"warm daemon {headline['warm_speedup']:.1f}x vs cold one-shot "
            f"(pipeline-warm {headline['pipeline_speedup']:.1f}x), "
            f"delta update {headline['delta_speedup']:.1f}x vs full rebuild, "
            f"decisions_identical={headline['decisions_identical']}, "
            f"serial_identical={headline['serial_identical']}, "
            f"rebuild_agreement={headline['rebuild_agreement']:.3f}"
        )
        return 0
    if args.scale:
        from .harness.scale import DEFAULT_SCALE_SIZES, run_scale_bench

        if args.sizes == "100,500,1000":  # the fingerprint-bench default
            sizes = list(DEFAULT_SCALE_SIZES)
        output = args.output
        if output == "BENCH_f3m_perf.json":  # default untouched: scale name
            output = "BENCH_scale.json"
        shard_counts = [int(s) for s in args.shards.split(",") if s.strip()]
        rows, metadata = run_scale_bench(
            sizes=sizes,
            chunk=args.chunk,
            shard_counts=shard_counts,
            shard_workers=args.shard_workers,
            query_workers=args.query_workers,
            workload=args.workload if args.workload != "perf" else "scale",
            work_dir=args.scale_dir,
        )
        write_bench_json(output, "scale", rows, metadata)
        headline = metadata["headline"]
        print(f"wrote {output}")
        speedup = headline.get("sharded_speedup") or 0.0
        print(
            f"largest size {headline['largest_size']}: "
            f"store peak RSS {headline['store_peak_rss_kb']} kB vs "
            f"in-RAM {headline['inram_peak_rss_kb']} kB "
            f"(ratio {headline['rss_ratio']:.2f}), "
            f"sharded speedup {speedup:.2f}x, "
            f"fingerprints_bit_identical={headline['fingerprints_bit_identical']}, "
            f"decisions_identical={headline['decisions_identical']}"
        )
        return 0
    if args.attempts:
        if args.sizes == "100,500,1000":  # the fingerprint-bench default
            sizes = [200, 600, 2000]
        output = args.output
        if output == "BENCH_f3m_perf.json":  # default untouched: attempt name
            output = "BENCH_attempt_perf.json"
        rows, metadata = run_attempt_bench(
            sizes=sizes,
            repeats=args.repeats,
            workload=args.workload,
            micro_repeats=args.micro_repeats,
        )
        write_bench_json(output, "attempt_perf", rows, metadata)
        if args.manifest:
            _write_bench_manifest(args.manifest, "attempt_perf", rows, metadata)
        headline = metadata["headline"]
        print(f"wrote {output}")
        print(
            f"largest size {headline['size']}: "
            f"{headline['alignment_speedup']:.2f}x batched-vs-pure alignment "
            f"(nw {headline['alignment_speedup_nw']:.2f}x), "
            f"bit_identical={headline['alignment_bit_identical']}, "
            f"engine_identical={headline['engine_identical']}, "
            f"bounded_identical={headline['bounded_identical']}, "
            f"cached_identical={headline['cached_identical']}, "
            f"sweep_identical={headline['sweep_digest_identical']}, "
            f"bound_sound={headline['bound_sound']}"
        )
        return 0
    rows, metadata = run_perf_bench(
        sizes=sizes,
        repeats=args.repeats,
        workload=args.workload,
        workers=args.workers,
        micro_repeats=args.micro_repeats,
    )
    write_bench_json(args.output, "f3m_perf", rows, metadata)
    if args.manifest:
        _write_bench_manifest(args.manifest, "f3m_perf", rows, metadata)
    headline = metadata["headline"]
    print(f"wrote {args.output}")
    print(
        f"largest size {headline['size']}: "
        f"{headline['fingerprint_speedup']:.2f}x batched-engine speedup, "
        f"bit_identical={headline['bit_identical']}, "
        f"decisions_identical={headline['decisions_identical']}"
    )
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import FuzzConfig, replay_campaign, replay_shapes, run_campaign
    from .obs.manifest import load_manifest as _load_manifest

    # --check: replay one minimized reproducer file (the .cmd contents).
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            module = parse_module(handle.read(), name=args.check)
        verify_module(module)
        if not args.pair:
            print("error: --check requires --pair A,B", file=sys.stderr)
            return 2
        pair = args.pair.split(",")
        shapes = replay_shapes(module, pair, legacy_bugs=args.legacy_bugs)
        hit = args.shape in shapes if args.shape else bool(shapes)
        print(
            f"{args.check}: shapes={sorted(set(shapes))} "
            f"{'REPRODUCED' if hit else 'clean'}"
        )
        return 1 if hit else 0

    # --replay: re-run a recorded campaign's failing candidates.
    if args.replay:
        verdict = replay_campaign(_load_manifest(args.replay))
        print(json.dumps(verdict, indent=2, sort_keys=True))
        return 0 if verdict["reproduced"] else 1

    config = FuzzConfig(
        budget=args.budget,
        seed=args.seed,
        strategy=args.strategy,
        legacy_bugs=args.legacy_bugs,
        oracle_gate=not args.no_oracle_gate,
        static_gate=not args.no_static_gate,
        danger_bias=args.danger_bias,
        inject_fault=args.inject_fault,
        workers=args.workers,
        timeout=args.timeout,
        out_dir=args.out_dir,
    )
    campaign = run_campaign(config, manifest_path=args.manifest)
    triage = campaign.triage
    print(
        f"fuzz: {len(campaign.results)} candidates, "
        f"{triage.total_failures} failures, {triage.unique_bugs} unique bugs "
        f"(dedup {triage.dedup_rate:.0%}), "
        f"{len(campaign.quarantined)} quarantined"
    )
    for signature in campaign.signatures:
        reduction = campaign.reductions.get(signature.bug_id)
        minimized = (
            f", minimized to {reduction['instructions']} instructions"
            if reduction and reduction["reproduced"]
            else ""
        )
        print(
            f"  {signature.bug_id}: {signature.shape} "
            f"[{signature.stage}/{signature.outcome}] "
            f"x{signature.count}{minimized}"
        )
    if args.manifest:
        print(f"wrote manifest {args.manifest}", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render one run manifest as tables, or diff two."""
    manifest = load_manifest(args.manifest)
    if args.other is None:
        print(render_manifest(manifest))
        return 0
    other = load_manifest(args.other)
    ignore = tuple(p for p in (args.ignore or "").split(",") if p)
    diff = diff_manifests(manifest, other, rel_tol=args.rel_tol, ignore=ignore)
    print(render_manifest_diff(diff))
    return 1 if diff else 0


def _serve_config_from_args(args: argparse.Namespace):
    from .serve import ServeConfig

    compact_ratio = None
    if args.compact_ratio.lower() != "none":
        compact_ratio = float(args.compact_ratio)
    return ServeConfig(
        threshold=args.threshold,
        alignment=args.alignment,
        verify=not args.no_verify,
        shards=args.shards,
        compact_ratio=compact_ratio,
        max_functions=args.max_functions,
        result_cache_size=args.result_cache_size,
        store_dir=args.store_dir,
        manifest_dir=args.manifest_dir,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeDaemon, serve_stdio, serve_unix

    faults = FaultInjector.parse(args.inject_fault) if args.inject_fault else None
    daemon = ServeDaemon(_serve_config_from_args(args), faults=faults)
    if args.stdio:
        serve_stdio(daemon)
    else:
        print(f"serving on {args.socket}", file=sys.stderr)
        serve_unix(daemon, args.socket)
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeError

    def read_arg_text(path: Optional[str]) -> Optional[str]:
        if path is None:
            return None
        if path == "-":
            return sys.stdin.read()
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()

    client = ServeClient.connect(args.socket)
    try:
        params: Dict[str, object] = {}
        if args.op == "submit":
            params["module"] = read_arg_text(args.module)
            params["removed"] = args.removed or None
        elif args.op == "query":
            params["name"] = args.name
            params["text"] = read_arg_text(args.module)
            params["limit"] = args.limit
        elif args.op == "merge":
            params["module"] = read_arg_text(args.module)
            params["corpus"] = args.corpus or None
            params["no_result_cache"] = args.no_result_cache or None
        elif args.op == "flush":
            params["directory"] = args.directory
        try:
            result = client.request(args.op, **params)
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        json.dump(result, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    finally:
        client.close()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="F3M function merging (CGO 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic workload module")
    p_gen.add_argument("-n", "--functions", type=int, default=200)
    p_gen.add_argument("-o", "--output", default="-")
    p_gen.set_defaults(func=_cmd_generate)

    p_compile = sub.add_parser("compile", help="compile MiniC source to IR")
    p_compile.add_argument("source")
    p_compile.add_argument("-o", "--output", default="-")
    p_compile.add_argument("--no-mem2reg", action="store_true")
    p_compile.add_argument("--optimize", action="store_true")
    p_compile.set_defaults(func=_cmd_compile)

    p_stats = sub.add_parser("stats", help="print module statistics")
    p_stats.add_argument("module")
    p_stats.set_defaults(func=_cmd_stats)

    p_merge = sub.add_parser("merge", help="run function merging on a module")
    p_merge.add_argument("module")
    p_merge.add_argument(
        "-s",
        "--strategy",
        choices=["hyfm", "f3m", "f3m-adaptive", "identical"],
        default="f3m",
    )
    p_merge.add_argument("-t", "--threshold", type=float, default=0.0)
    p_merge.add_argument("-o", "--output", default="-")
    p_merge.add_argument("--optimize", action="store_true", help="run clean-up passes after merging")
    p_merge.add_argument("--no-verify", action="store_true")
    p_merge.add_argument(
        "--static-check",
        action="store_true",
        help="gate every commit with the static merge-safety linter",
    )
    p_merge.add_argument(
        "--validate",
        choices=["off", "observe", "gate"],
        default="off",
        help=(
            "run the translation validator on every merge: observe records "
            "the verdict, gate vetoes refuted merges and skips the oracle "
            "on proved ones"
        ),
    )
    p_merge.add_argument(
        "--oracle",
        action="store_true",
        help="gate every commit with the differential-execution oracle",
    )
    p_merge.add_argument(
        "--on-error",
        choices=["skip", "raise"],
        default="skip",
        help="contain unexpected merge failures (skip, default) or re-raise",
    )
    p_merge.add_argument(
        "--inject-fault",
        metavar="STAGE[:N]",
        help=(
            "deterministically fail at a pipeline stage "
            f"({'|'.join(FAULT_STAGES)}), optionally only on the N-th hit"
        ),
    )
    p_merge.add_argument(
        "--partitions",
        type=int,
        default=0,
        help=(
            "merge ThinLTO-style within N hash-assigned partitions instead "
            "of globally (0 = global, the default)"
        ),
    )
    p_merge.add_argument(
        "--reconcile",
        action="store_true",
        help=(
            "with --partitions: after the parallel partition-local sweeps, "
            "re-rank survivors globally and merge the cross-partition pairs "
            "the partitions had to forgo (optimistic two-phase merging)"
        ),
    )
    p_merge.add_argument(
        "--workers",
        type=int,
        default=None,
        help="with --partitions: process-pool size for the partition sweeps",
    )
    p_merge.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help="stream pipeline spans to a JSONL trace file",
    )
    p_merge.add_argument(
        "--metrics",
        action="store_true",
        help="render the run manifest (metrics, stages, outcomes) to stderr",
    )
    p_merge.add_argument(
        "--manifest",
        metavar="FILE.json",
        help=(
            "write the run manifest JSON here (default run-manifest.json "
            "when --trace or --metrics is given)"
        ),
    )
    p_merge.set_defaults(func=_cmd_merge)

    p_lint = sub.add_parser("lint", help="run the static checkers on a module")
    p_lint.add_argument("module", nargs="?")
    p_lint.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable diagnostics on stdout",
    )
    p_lint.add_argument(
        "--checkers",
        metavar="A,B,...",
        help="comma-separated checker ids to run (default: all)",
    )
    p_lint.add_argument(
        "--min-severity",
        choices=["info", "warning", "error"],
        help="drop diagnostics below this severity",
    )
    p_lint.add_argument(
        "--list-checkers",
        action="store_true",
        help="list the registered checkers and exit",
    )
    p_lint.set_defaults(func=_cmd_lint)

    p_run = sub.add_parser("run", help="interpret a function in a module")
    p_run.add_argument("module")
    p_run.add_argument("--entry", default="driver")
    p_run.add_argument("-a", "--args", nargs="*", default=[])
    p_run.add_argument("--fuel", type=int, default=10_000_000)
    p_run.set_defaults(func=_cmd_run)

    p_cmp = sub.add_parser("compare", help="HyFM vs F3M on a generated workload")
    p_cmp.add_argument("-n", "--functions", type=int, default=500)
    p_cmp.set_defaults(func=_cmd_compare)

    p_perf = sub.add_parser(
        "bench-perf",
        help="batched-vs-per-function fingerprint engine benchmark",
    )
    p_perf.add_argument(
        "--sizes",
        default="100,500,1000",
        help="comma-separated workload sizes (functions per module)",
    )
    p_perf.add_argument("--repeats", type=int, default=3, help="best-of-N timing runs")
    p_perf.add_argument(
        "--micro-repeats",
        type=int,
        default=None,
        help="best-of-N for the fingerprint microbench alone (default: --repeats)",
    )
    p_perf.add_argument("--workload", default="perf", help="workload family name")
    p_perf.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool fan-out for very large modules",
    )
    p_perf.add_argument(
        "--attempts",
        action="store_true",
        help=(
            "run the attempt-stage suite instead: batched-vs-pure alignment, "
            "pre-alignment bound, cache and partition-sweep equivalence "
            "(default sizes 200,600,2000 -> BENCH_attempt_perf.json)"
        ),
    )
    p_perf.add_argument(
        "--scale",
        action="store_true",
        help=(
            "run the corpus-scale sweep instead: memmap fingerprint store vs "
            "in-RAM path, band-sharded vs serial LSH, per-stage wall-clock + "
            "peak RSS (default sizes 2000,20000,200000 -> BENCH_scale.json)"
        ),
    )
    p_perf.add_argument(
        "--chunk",
        type=int,
        default=2000,
        help="--scale: functions generated/streamed per chunk",
    )
    p_perf.add_argument(
        "--shards",
        default="1,4",
        help="--scale: comma-separated LSH shard counts to sweep",
    )
    p_perf.add_argument(
        "--shard-workers",
        type=int,
        default=1,
        help="--scale: shard-build process-pool size (1 = inline, same worker)",
    )
    p_perf.add_argument(
        "--query-workers",
        type=int,
        default=1,
        help="--scale: query fan-out process-pool size (1 = inline, same kernel)",
    )
    p_perf.add_argument(
        "--scale-dir",
        default=None,
        help="--scale: working directory for stores (kept; default: temp, deleted)",
    )
    p_perf.add_argument(
        "--serve",
        action="store_true",
        help=(
            "run the merge-as-a-service suite instead: warm daemon vs cold "
            "one-shot merge, delta update vs full rebuild, decision identity "
            "(default sizes 2000,20000 -> BENCH_serve.json)"
        ),
    )
    p_perf.add_argument(
        "--delta-fraction",
        type=float,
        default=0.01,
        help="--serve: fraction of corpus functions changed per delta",
    )
    p_perf.add_argument(
        "--reconcile",
        action="store_true",
        help=(
            "run the optimistic cross-partition suite instead: partition-"
            "local sweep vs two-phase optimistic sweep, recovered pairs and "
            "size delta, decision determinism across worker counts "
            "(default sizes 48,96 -> BENCH_reconcile.json)"
        ),
    )
    p_perf.add_argument(
        "--partitions",
        type=int,
        default=4,
        help="--reconcile: number of hash-assigned partitions",
    )
    p_perf.add_argument("-o", "--output", default="BENCH_f3m_perf.json")
    p_perf.add_argument(
        "--manifest",
        metavar="FILE.json",
        help="also write a run manifest describing this bench run",
    )
    p_perf.set_defaults(func=_cmd_bench_perf)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="run a differential-fuzzing campaign against the merge pipeline",
    )
    p_fuzz.add_argument("--budget", type=int, default=100, help="candidate modules to try")
    p_fuzz.add_argument("--seed", type=int, default=0, help="campaign seed")
    p_fuzz.add_argument(
        "-s",
        "--strategy",
        choices=["hyfm", "f3m", "f3m-adaptive"],
        default="hyfm",
    )
    p_fuzz.add_argument(
        "--legacy-bugs",
        action="store_true",
        help="fuzz the legacy (§III-E buggy) SSA-repair path",
    )
    p_fuzz.add_argument(
        "--no-oracle-gate",
        action="store_true",
        help="disable the differential-oracle commit gate",
    )
    p_fuzz.add_argument(
        "--no-static-gate",
        action="store_true",
        help="disable the static merge-safety commit gate",
    )
    p_fuzz.add_argument("--danger-bias", type=float, default=0.5)
    p_fuzz.add_argument("--workers", type=int, default=2, help="0 = in-process")
    p_fuzz.add_argument(
        "--timeout", type=float, default=30.0, help="per-candidate deadline (s)"
    )
    p_fuzz.add_argument(
        "--inject-fault",
        metavar="STAGE[:N]",
        help="pipeline stages as in merge, plus worker_crash:N / worker_hang:N",
    )
    p_fuzz.add_argument("--manifest", metavar="FILE.json")
    p_fuzz.add_argument(
        "--out-dir", metavar="DIR", help="write per-bug reproducers here"
    )
    p_fuzz.add_argument(
        "--replay",
        metavar="MANIFEST",
        help="re-run a recorded campaign's failing candidates",
    )
    p_fuzz.add_argument(
        "--check",
        metavar="FILE.ir",
        help="replay one reproducer module (exit 1 if the bug reproduces)",
    )
    p_fuzz.add_argument("--pair", metavar="A,B", help="function pair for --check")
    p_fuzz.add_argument("--shape", help="expected bug shape for --check")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    p_serve = sub.add_parser(
        "serve",
        help="run the merge-as-a-service daemon (unix socket or stdio)",
    )
    p_serve.add_argument(
        "--socket",
        default="repro-serve.sock",
        help="unix domain socket path to listen on",
    )
    p_serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve one client over stdin/stdout instead of a socket",
    )
    p_serve.add_argument("-t", "--threshold", type=float, default=0.0)
    p_serve.add_argument(
        "--alignment", choices=["linear", "nw"], default="linear"
    )
    p_serve.add_argument("--no-verify", action="store_true")
    p_serve.add_argument(
        "--shards", type=int, default=1, help="band-shard the corpus index"
    )
    p_serve.add_argument(
        "--compact-ratio",
        default="0.5",
        help=(
            "auto-compact the corpus index when tombstones exceed this "
            "fraction of live entries ('none' disables)"
        ),
    )
    p_serve.add_argument(
        "--max-functions",
        type=int,
        default=None,
        help="LRU-evict corpus functions beyond this count",
    )
    p_serve.add_argument(
        "--result-cache-size",
        type=int,
        default=64,
        help="merged-module result LRU entries",
    )
    p_serve.add_argument(
        "--store-dir",
        default=None,
        help="fingerprint store to warm from at startup / spill to on flush",
    )
    p_serve.add_argument(
        "--manifest-dir",
        default=None,
        help="write one kind=serve run manifest per request here",
    )
    p_serve.add_argument(
        "--inject-fault",
        metavar="STAGE[:N]",
        help="deterministically fail at a serve stage (serve_commit|serve_disconnect)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_client = sub.add_parser(
        "client", help="send one request to a running serve daemon"
    )
    p_client.add_argument(
        "op",
        choices=[
            "ping",
            "submit",
            "query",
            "merge",
            "dump",
            "stats",
            "flush",
            "compact",
            "shutdown",
        ],
    )
    p_client.add_argument(
        "--socket",
        default="repro-serve.sock",
        help="unix domain socket path of the daemon",
    )
    p_client.add_argument(
        "-m",
        "--module",
        default=None,
        help="IR module file ('-' for stdin): submit delta / merge input / query probe",
    )
    p_client.add_argument(
        "--removed",
        action="append",
        default=None,
        metavar="NAME",
        help="submit: corpus function to remove (repeatable)",
    )
    p_client.add_argument("--name", default=None, help="query: resident function name")
    p_client.add_argument("--limit", type=int, default=10, help="query: max matches")
    p_client.add_argument(
        "--corpus", action="store_true", help="merge: merge the resident corpus"
    )
    p_client.add_argument(
        "--no-result-cache",
        action="store_true",
        help="merge: bypass the merged-result cache",
    )
    p_client.add_argument(
        "--directory", default=None, help="flush: fingerprint store directory"
    )
    p_client.set_defaults(func=_cmd_client)

    p_report = sub.add_parser(
        "report",
        help="render a run manifest as tables, or diff two manifests",
    )
    p_report.add_argument("manifest", help="manifest JSON (repro merge --manifest)")
    p_report.add_argument(
        "other",
        nargs="?",
        help="second manifest: print the structural diff instead (exit 1 if any)",
    )
    p_report.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        help="relative tolerance for numeric fields when diffing",
    )
    p_report.add_argument(
        "--ignore",
        metavar="PATH,PATH",
        help=(
            "comma-separated manifest paths to drop from the diff "
            "(e.g. created_unix,git_rev,stages,total_time,metrics)"
        ),
    )
    p_report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


def lint_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    args = list(sys.argv[1:] if argv is None else argv)
    return main(["lint"] + args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
