"""Function linearization: turn a CFG into a flat instruction sequence.

Sequence-alignment-based merging (SalSSA, HyFM, F3M) treats a function as a
linear sequence of instructions.  We linearize blocks in reverse postorder
so that structurally similar functions produce aligned sequences, and expose
per-block sequences for HyFM's block-level alignment.
"""

from __future__ import annotations

from typing import List

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from .cfg import reverse_postorder

__all__ = ["linearize", "linearize_blocks", "block_instructions"]


def linearize_blocks(func: Function) -> List[BasicBlock]:
    """Blocks in the canonical (reverse postorder) linearization order."""
    return reverse_postorder(func)


def block_instructions(block: BasicBlock) -> List[Instruction]:
    """The instructions of one block, in program order."""
    return list(block.instructions)


def linearize(func: Function) -> List[Instruction]:
    """All reachable instructions of *func* as one flat sequence."""
    out: List[Instruction] = []
    for block in linearize_blocks(func):
        out.extend(block.instructions)
    return out
