"""CFG traversals and utilities."""

from __future__ import annotations

from typing import Dict, List, Set

from ..ir.basicblock import BasicBlock
from ..ir.function import Function

__all__ = [
    "reverse_postorder",
    "postorder",
    "reachable_blocks",
    "remove_unreachable_blocks",
]


def postorder(func: Function) -> List[BasicBlock]:
    """Blocks of *func* in DFS postorder from the entry block."""
    if func.is_declaration:
        return []
    entry = func.entry
    seen: Set[int] = {id(entry)}
    order: List[BasicBlock] = []
    # Iterative DFS (functions in large workloads can have deep CFGs).
    # Three parallel stacks — block, its successor list, resume index — keep
    # the loop allocation-free on the hot fingerprinting path.
    blocks: List[BasicBlock] = [entry]
    succs: List[List[BasicBlock]] = [entry.successors()]
    idxs: List[int] = [0]
    while blocks:
        here = succs[-1]
        i = idxs[-1]
        n = len(here)
        while i < n and id(here[i]) in seen:
            i += 1
        if i < n:
            idxs[-1] = i + 1
            nxt = here[i]
            seen.add(id(nxt))
            blocks.append(nxt)
            succs.append(nxt.successors())
            idxs.append(0)
        else:
            order.append(blocks.pop())
            succs.pop()
            idxs.pop()
    return order


def reverse_postorder(func: Function) -> List[BasicBlock]:
    order = postorder(func)
    order.reverse()
    return order


def reachable_blocks(func: Function) -> Set[int]:
    """Ids of blocks reachable from the entry."""
    return {id(b) for b in postorder(func)}


def remove_unreachable_blocks(func: Function) -> int:
    """Delete blocks not reachable from the entry; returns the number removed.

    Phi nodes in surviving blocks lose incoming entries from deleted blocks.
    """
    if func.is_declaration:
        return 0
    live = reachable_blocks(func)
    dead = [b for b in func.blocks if id(b) not in live]
    for block in dead:
        for succ in set(map(id, block.successors())):
            pass  # successors updated implicitly through phi fix-up below
    for block in dead:
        term = block.terminator
        if term is not None:
            for succ in term.successors():
                if id(succ) in live:
                    for phi in succ.phis():
                        while phi.incoming_for(block) is not None:
                            phi.remove_incoming(block)
        block.erase_from_parent()
    return len(dead)
