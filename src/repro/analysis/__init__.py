"""Analyses over the repro IR: CFG, dominators, linearization, size model."""

from .cfg import postorder, reachable_blocks, remove_unreachable_blocks, reverse_postorder
from .dominators import DominatorTree
from .linearizer import block_instructions, linearize, linearize_blocks
from .size import function_size, instruction_size, module_size, size_breakdown

__all__ = [
    "postorder",
    "reverse_postorder",
    "reachable_blocks",
    "remove_unreachable_blocks",
    "DominatorTree",
    "linearize",
    "linearize_blocks",
    "block_instructions",
    "instruction_size",
    "function_size",
    "module_size",
    "size_breakdown",
]
