"""Code-size model.

The paper measures linked object file bytes.  We have no object files, so we
use a weighted instruction count calibrated to typical x86-64 encodings:
every instruction costs a base amount, with memory and call instructions
slightly heavier and phi nodes free (they lower to copies that are usually
coalesced away).  All F3M results are *relative* sizes, so any consistent
monotone model preserves the paper's comparisons; the weights only make the
absolute percentages land in a realistic range.
"""

from __future__ import annotations

from typing import Dict

from ..ir.function import Function
from ..ir.instructions import Instruction, Opcode
from ..ir.module import Module

__all__ = ["instruction_size", "function_size", "module_size", "size_breakdown"]

# Approximate encoded bytes per instruction kind.
_WEIGHTS: Dict[Opcode, int] = {
    Opcode.PHI: 0,  # lowered to coalesced copies
    Opcode.BR: 2,
    Opcode.RET: 1,
    Opcode.UNREACHABLE: 1,
    Opcode.SWITCH: 6,
    Opcode.ALLOCA: 4,
    Opcode.LOAD: 4,
    Opcode.STORE: 4,
    Opcode.GEP: 4,
    Opcode.CALL: 5,
    Opcode.INVOKE: 8,
    Opcode.SELECT: 4,
    Opcode.ICMP: 3,
    Opcode.FCMP: 4,
}
_DEFAULT_WEIGHT = 3
_FUNCTION_OVERHEAD = 12  # prologue/epilogue, alignment padding


def instruction_size(inst: Instruction) -> int:
    """Modelled encoded size of one instruction, in bytes."""
    return _WEIGHTS.get(inst.opcode, _DEFAULT_WEIGHT)


def function_size(func: Function) -> int:
    """Modelled size of a function body (0 for declarations)."""
    if func.is_declaration:
        return 0
    return _FUNCTION_OVERHEAD + sum(
        instruction_size(inst) for inst in func.instructions()
    )


def module_size(module: Module) -> int:
    """Modelled linked object size of the module."""
    return sum(function_size(f) for f in module.functions)


def size_breakdown(module: Module) -> Dict[str, int]:
    """Per-function size map (diagnostics and reports)."""
    return {f.name: function_size(f) for f in module.functions if not f.is_declaration}
