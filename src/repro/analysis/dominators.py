"""Dominator tree via the Cooper–Harvey–Kennedy algorithm.

Needed by the IR verifier (SSA dominance checks) and by the merged-code
generator's SSA repair stage, which is where the two HyFM bugs documented in
F3M Section III-E live.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from ..ir.values import Value
from .cfg import reverse_postorder

__all__ = ["DominatorTree"]


class DominatorTree:
    """Immediate-dominator map for the reachable blocks of a function."""

    def __init__(self, func: Function) -> None:
        self.function = func
        self._rpo = reverse_postorder(func)
        self._index: Dict[int, int] = {id(b): i for i, b in enumerate(self._rpo)}
        self._idom: Dict[int, Optional[BasicBlock]] = {}
        self._compute()

    def _compute(self) -> None:
        if not self._rpo:
            return
        entry = self._rpo[0]
        idom: Dict[int, BasicBlock] = {id(entry): entry}
        changed = True
        while changed:
            changed = False
            for block in self._rpo[1:]:
                new_idom: Optional[BasicBlock] = None
                for pred in block.predecessors():
                    if id(pred) not in self._index:
                        continue  # unreachable predecessor
                    if id(pred) in idom:
                        if new_idom is None:
                            new_idom = pred
                        else:
                            new_idom = self._intersect(pred, new_idom, idom)
                if new_idom is not None and idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        self._idom = {bid: (None if bid == id(entry) else blk) for bid, blk in idom.items()}
        self._idom[id(entry)] = None

    def _intersect(
        self, a: BasicBlock, b: BasicBlock, idom: Dict[int, BasicBlock]
    ) -> BasicBlock:
        fa, fb = a, b
        while fa is not fb:
            while self._index[id(fa)] > self._index[id(fb)]:
                fa = idom[id(fa)]
            while self._index[id(fb)] > self._index[id(fa)]:
                fb = idom[id(fb)]
        return fa

    # -- queries -----------------------------------------------------------------
    def is_reachable(self, block: BasicBlock) -> bool:
        return id(block) in self._index

    def idom(self, block: BasicBlock) -> Optional[BasicBlock]:
        """Immediate dominator of *block* (None for the entry block)."""
        return self._idom.get(id(block))

    def dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if block *a* dominates block *b* (reflexive)."""
        if not self.is_reachable(a) or not self.is_reachable(b):
            return False
        runner: Optional[BasicBlock] = b
        while runner is not None:
            if runner is a:
                return True
            runner = self._idom.get(id(runner))
        return False

    def strictly_dominates_block(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates_block(a, b)

    def dominates(self, def_value: Value, user: Instruction, operand_index: int) -> bool:
        """True if *def_value* dominates the given use.

        Non-instruction values (arguments, constants, functions, blocks)
        dominate everything.  For a phi use, the def must dominate the end of
        the corresponding incoming block, not the phi itself.
        """
        if not isinstance(def_value, Instruction):
            return True
        def_block = def_value.parent
        if def_block is None:
            return False
        if user.is_phi:
            # Incoming value at index i pairs with the block at index i+1.
            incoming_block = user.operand(operand_index + 1)
            if not isinstance(incoming_block, BasicBlock):
                return False
            return self.dominates_block(def_block, incoming_block)
        use_block = user.parent
        if use_block is None:
            return False
        if def_block is use_block:
            insts = def_block.instructions
            return insts.index(def_value) < insts.index(user)
        return self.strictly_dominates_block(def_block, use_block)

    def children(self, block: BasicBlock) -> List[BasicBlock]:
        """Dominator-tree children of *block*."""
        return [b for b in self._rpo if self._idom.get(id(b)) is block]
