"""Merge-as-a-service: a persistent daemon over the F3M pipeline.

One long-lived process holds the fingerprint database, LSH index and
alignment/plan/result caches hot across requests; clients submit module
deltas, query candidates and request merges over a line-JSON protocol
(stdio or unix socket).  See ``docs/serving.md``.
"""

from .client import ServeClient, ServeError
from .config import ServeConfig
from .daemon import ServeDaemon, serve_stdio, serve_unix
from .db import CorpusEntry, CorpusSnapshot, DeltaError, FingerprintDatabase
from .protocol import OPS, ProtocolError, decode_message, encode_message

__all__ = [
    "OPS",
    "CorpusEntry",
    "CorpusSnapshot",
    "DeltaError",
    "FingerprintDatabase",
    "ProtocolError",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeError",
    "decode_message",
    "encode_message",
    "serve_stdio",
    "serve_unix",
]
