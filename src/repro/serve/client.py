"""Client library for the merge-as-a-service daemon.

Three ways to get a :class:`ServeClient`:

* :meth:`ServeClient.connect` — dial a running daemon's unix socket;
* :meth:`ServeClient.spawn` — fork a private ``repro serve --stdio``
  subprocess and talk over its pipes (what the benchmarks use);
* ``ServeClient(daemon=...)`` — drive an in-process
  :class:`~repro.serve.daemon.ServeDaemon` directly, no transport at all
  (what most tests use).

Every request method returns the daemon's ``result`` payload;
:attr:`last_cache` holds the per-request cache-counter deltas of the most
recent call.  ``ok: false`` responses raise :class:`ServeError` carrying
the daemon-side error type and message.
"""

from __future__ import annotations

import socket
import subprocess
import sys
from typing import Dict, List, Optional, Sequence

from .protocol import ProtocolError, decode_message, encode_message

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """An ``ok: false`` response: *kind* is the daemon-side exception type."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message


class ServeClient:
    def __init__(self, daemon=None) -> None:
        self._daemon = daemon
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._writer = None
        self._proc: Optional[subprocess.Popen] = None
        self._next_id = 0
        #: Cache-counter deltas of the most recent request.
        self.last_cache: Dict[str, int] = {}

    # -- constructors ------------------------------------------------------------------
    @classmethod
    def connect(cls, path: str) -> "ServeClient":
        """Dial a daemon listening on the unix socket at *path*."""
        client = cls()
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(path)
        client._sock = sock
        client._reader = sock.makefile("rb")
        return client

    @classmethod
    def spawn(cls, argv: Optional[Sequence[str]] = None) -> "ServeClient":
        """Start a private ``repro serve --stdio`` daemon subprocess."""
        if argv is None:
            argv = [sys.executable, "-m", "repro", "serve", "--stdio"]
        client = cls()
        client._proc = subprocess.Popen(
            list(argv),
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
        )
        client._reader = client._proc.stdout
        client._writer = client._proc.stdin
        return client

    # -- plumbing ----------------------------------------------------------------------
    def request(self, op: str, **params) -> Dict[str, object]:
        """Send one request; return its ``result`` or raise :class:`ServeError`."""
        self._next_id += 1
        message: Dict[str, object] = {"id": self._next_id, "op": op}
        for key, value in params.items():
            if value is not None:
                message[key] = value
        if self._daemon is not None:
            response = self._daemon.handle(message)
        else:
            payload = encode_message(message)
            if self._sock is not None:
                self._sock.sendall(payload)
            else:
                self._writer.write(payload)
                self._writer.flush()
            line = self._reader.readline()
            if not line:
                raise ConnectionError("daemon closed the connection")
            response = decode_message(line)
        self.last_cache = dict(response.get("cache") or {})
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                str(error.get("type", "Error")), str(error.get("message", ""))
            )
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    def close(self) -> None:
        if self._reader is not None and self._sock is not None:
            self._reader.close()
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        if self._proc is not None:
            if self._proc.stdin:
                self._proc.stdin.close()
            self._proc.wait(timeout=10)
            self._proc = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        try:
            if self._proc is not None or self._sock is not None:
                self.shutdown()
        except Exception:
            pass
        self.close()

    # -- ops ---------------------------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def submit(
        self,
        module: Optional[str] = None,
        removed: Optional[List[str]] = None,
    ) -> Dict[str, object]:
        return self.request("submit", module=module, removed=removed)

    def query(
        self,
        name: Optional[str] = None,
        text: Optional[str] = None,
        limit: int = 10,
    ) -> Dict[str, object]:
        return self.request("query", name=name, text=text, limit=limit)

    def merge(
        self,
        module: Optional[str] = None,
        corpus: bool = False,
        no_result_cache: bool = False,
    ) -> Dict[str, object]:
        return self.request(
            "merge",
            module=module,
            corpus=corpus or None,
            no_result_cache=no_result_cache or None,
        )

    def dump(self) -> Dict[str, object]:
        return self.request("dump")

    def stats(self) -> Dict[str, object]:
        return self.request("stats")

    def flush(self, directory: Optional[str] = None) -> Dict[str, object]:
        return self.request("flush", directory=directory)

    def compact(self) -> Dict[str, object]:
        return self.request("compact")

    def shutdown(self) -> Dict[str, object]:
        return self.request("shutdown")
