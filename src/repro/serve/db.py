"""Persistent incremental fingerprint database with snapshot-isolated reads.

The daemon's state is one long-lived *corpus* :class:`~repro.ir.module.Module`
plus a :class:`CorpusSnapshot` — an immutable (by convention) bundle of the
corpus version, a name-keyed LSH index and per-function bookkeeping —
published by a single atomic reference swap.  Readers (``query``) grab the
current snapshot once and never lock; the writer (``submit``) clones the
index copy-on-write (:meth:`~repro.search.lsh.LSHIndex.clone`), mutates the
clone and the corpus module under a :class:`~repro.merge.transaction
.MergeTransaction`, and publishes the new snapshot only after everything
succeeded.  A failure anywhere mid-commit — including an injected
``serve_commit`` fault — rolls the corpus module back and discards the
clone, so concurrent and subsequent readers only ever observe the
pre-request or post-request state, never a half-commit.

Hot state that outlives any request:

* the content-addressed :class:`~repro.fingerprint.cache.FingerprintCache`
  (optionally warmed from / spilled to a
  :class:`~repro.fingerprint.store.FingerprintStore`),
* one shared :class:`~repro.alignment.batch.BatchAlignmentEngine` whose
  alignment-decision and merge-plan caches are content-addressed and
  therefore safe across requests,
* an LRU of whole merged-module results keyed by request-text digest.

Merge requests run the exact same pipeline as one-shot ``repro merge -s
f3m`` (same static MinHash parameters, same :class:`PassConfig` defaults);
the caches are content-addressed and decision-transparent, which is what
makes the daemon's merge decisions bit-identical to the one-shot CLI.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..alignment.batch import BatchAlignmentEngine
from ..faults import FaultInjector
from ..fingerprint.batch import minhash_module
from ..fingerprint.cache import FingerprintCache
from ..fingerprint.encoding import EncodingOptions
from ..fingerprint.minhash import MinHashConfig
from ..fingerprint.store import FingerprintStore
from ..ir.clone import clone_function_into
from ..ir.function import Function
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.verifier import verify_module
from ..merge.pass_ import FunctionMergingPass
from ..merge.transaction import MergeTransaction
from ..search.lsh import LSHIndex, LSHQueryStats
from ..search.pairing import MinHashLSHRanker
from ..search.sharded import ShardedLSHIndex
from .config import ServeConfig

__all__ = ["CorpusEntry", "CorpusSnapshot", "DeltaError", "FingerprintDatabase"]


class DeltaError(ValueError):
    """A client mistake (bad delta, unknown name, malformed probe).

    Raised *before* any corpus mutation whenever possible; when raised
    mid-commit the transaction rollback guarantees the corpus is back in
    its pre-request state.  The daemon maps it to an ``ok: false``
    response and keeps serving.
    """


@dataclass(frozen=True)
class CorpusEntry:
    """Bookkeeping for one corpus function.

    ``version`` is the corpus version whose commit last (re)defined the
    function; ``touched`` is a database-wide monotonic counter giving the
    LRU eviction order.
    """

    name: str
    instructions: int
    version: int
    touched: int


@dataclass(frozen=True)
class CorpusSnapshot:
    """One published corpus state: treat every field as immutable.

    ``index`` is keyed by function *name* (names are the stable identity
    across incremental updates; function objects are not).  The writer
    never mutates a published snapshot's index — it clones it — so readers
    holding this snapshot are isolated from in-flight commits.
    """

    version: int
    index: LSHIndex
    entries: Dict[str, CorpusEntry] = field(default_factory=dict)


class FingerprintDatabase:
    """The daemon's corpus: incremental submits, snapshot-isolated queries,
    and a merge pipeline whose caches stay hot across requests."""

    #: LSH geometry shared with the one-shot ``f3m`` ranker defaults
    #: (rows=2, bands=k/rows, bucket_cap=100) — decision identity depends
    #: on the daemon index probing exactly the same buckets.
    _ROWS = 2
    _BUCKET_CAP = 100

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.faults = faults
        self.module = Module("corpus")
        self.minhash_config = MinHashConfig()
        self.encoding = EncodingOptions()
        self.fingerprints = FingerprintCache(
            maxsize=self.config.fingerprint_cache_size
        )
        self.engine = BatchAlignmentEngine(strategy=self.config.alignment)
        self._snapshot = CorpusSnapshot(version=0, index=self._new_index())
        # Writers serialize on _write_lock; merge requests serialize on
        # _merge_lock (the corpus module and alignment engine are not
        # reentrant); readers take no lock at all.
        self._write_lock = threading.RLock()
        self._merge_lock = threading.RLock()
        self._results_lock = threading.Lock()
        self._results: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self.result_hits = 0
        self.result_misses = 0
        self.result_evictions = 0
        self.commits = 0
        self.rollbacks = 0
        self.evicted_functions = 0
        self._touch = 0
        self._dump_cache: Optional[Tuple[int, str]] = None
        if self.config.store_dir and os.path.exists(
            os.path.join(self.config.store_dir, "header.json")
        ):
            store = FingerprintStore.open(self.config.store_dir)
            self.fingerprints.load_from_store(store)

    # -- snapshot plumbing -------------------------------------------------------------
    @property
    def snapshot(self) -> CorpusSnapshot:
        """The current published snapshot (one atomic reference read)."""
        return self._snapshot

    @property
    def version(self) -> int:
        return self._snapshot.version

    def _new_index(self) -> LSHIndex:
        bands = self.minhash_config.k // self._ROWS
        if self.config.shards > 1:
            return ShardedLSHIndex(
                rows=self._ROWS,
                bands=bands,
                bucket_cap=self._BUCKET_CAP,
                shards=self.config.shards,
                compact_ratio=self.config.compact_ratio,
            )
        return LSHIndex(
            rows=self._ROWS,
            bands=bands,
            bucket_cap=self._BUCKET_CAP,
            compact_ratio=self.config.compact_ratio,
        )

    # -- submit (the write path) -------------------------------------------------------
    def apply_delta(
        self,
        module_text: Optional[str] = None,
        removed: Optional[Sequence[str]] = None,
    ) -> Dict[str, object]:
        """Apply one delta: upsert the functions defined in *module_text*,
        drop the names in *removed*, publish a new snapshot.

        All-or-nothing: on any failure the corpus module is rolled back,
        the cloned index is discarded, and the previous snapshot stays
        published.
        """
        with self._write_lock:
            snap = self._snapshot
            removed_names = list(removed or [])
            if len(set(removed_names)) != len(removed_names):
                raise DeltaError("duplicate name in removed list")

            delta = (
                parse_module(module_text, name="delta")
                if module_text
                else Module("delta")
            )
            verify_module(delta)
            defined = delta.defined_functions()
            defined_names = {f.name for f in defined}
            if len(defined_names) != len(defined):
                raise DeltaError("duplicate function name in delta module")
            for name in removed_names:
                if name in defined_names:
                    raise DeltaError(
                        f"function {name!r} both defined and removed"
                    )
                if name not in snap.entries:
                    raise DeltaError(f"cannot remove unknown function {name!r}")

            added = sorted(n for n in defined_names if n not in snap.entries)
            changed = sorted(n for n in defined_names if n in snap.entries)

            # The transaction's baseline is the pre-request corpus: rollback
            # restores captured bodies and erases any function created below.
            txn = MergeTransaction(self.module)
            try:
                result = self._commit_delta(
                    snap, txn, delta, defined, removed_names, added, changed
                )
            except BaseException:
                captured = txn.captured_functions()
                txn.rollback()
                self.rollbacks += 1
                for func in captured:
                    self.engine.invalidate_function(func)
                raise
            captured = txn.captured_functions()
            txn.commit()
            self.commits += 1
            self._dump_cache = None
            # Captured functions had their bodies replaced in place: any
            # alignment memo keyed by their old blocks is stale.
            for func in captured:
                self.engine.invalidate_function(func)
            return result

    def _commit_delta(
        self,
        snap: CorpusSnapshot,
        txn: MergeTransaction,
        delta: Module,
        defined: List[Function],
        removed_names: List[str],
        added: List[str],
        changed: List[str],
    ) -> Dict[str, object]:
        corpus = self.module
        # Adoption pass: every delta function (definitions *and*
        # declarations) gets a corpus counterpart, and the value map sends
        # delta functions to counterparts so cloned call operands resolve
        # to corpus identities.
        vmap: Dict[int, Function] = {}
        for func in delta.functions:
            counterpart = corpus.get_function(func.name)
            if counterpart is None:
                if func.is_declaration:
                    counterpart = corpus.declare_function(func.ftype, func.name)
                else:
                    counterpart = Function(func.ftype, func.name, parent=corpus)
            elif counterpart.ftype is not func.ftype:
                raise DeltaError(
                    f"function {func.name!r} redefined with a different type"
                )
            vmap[id(func)] = counterpart

        # Clone new bodies in.  Changed functions keep their identity (the
        # corpus Function object survives, so existing call sites stay
        # valid); only their body is replaced.
        for func in defined:
            dest = vmap[id(func)]
            if dest.blocks:
                txn.capture(dest)
                dest.drop_body()
            for src_arg, dst_arg in zip(func.args, dest.args):
                dst_arg.name = src_arg.name
            clone_function_into(func, dest, vmap)
            dest.internal = func.internal

        # Removals after upserts so caller checks see the post-delta graph:
        # a still-referenced function demotes to a declaration, an
        # unreferenced one is erased outright.
        for name in removed_names:
            func = corpus.get_function(name)
            txn.capture(func)
            if func.callers():
                func.drop_body()
                func.internal = False
            else:
                func.erase_from_parent()

        # Fingerprints flow through the shared content-addressed cache —
        # an unchanged body re-submitted later is a pure cache hit.
        upserts = [vmap[id(func)] for func in defined]
        fps = minhash_module(
            upserts, self.minhash_config, self.encoding, cache=self.fingerprints
        )

        # Copy-on-write index update against the published snapshot.
        index = snap.index.clone()
        for name in removed_names:
            index.remove(name)
        for name in changed:
            index.remove(name)
        if self.faults is not None:
            # Mid-commit crash point: corpus mutated, index half-updated.
            self.faults.hit("serve_commit")
        index.insert_batch([func.name for func in upserts], fps)

        version = snap.version + 1
        entries = dict(snap.entries)
        for name in removed_names:
            del entries[name]
        for func in upserts:
            self._touch += 1
            entries[func.name] = CorpusEntry(
                name=func.name,
                instructions=func.num_instructions,
                version=version,
                touched=self._touch,
            )

        evicted = self._evict(entries, index, txn)

        # Publish: a single reference swap, after which new readers see the
        # post-commit state and in-flight readers keep the old snapshot.
        self._snapshot = CorpusSnapshot(
            version=version, index=index, entries=entries
        )
        return {
            "version": version,
            "added": added,
            "changed": changed,
            "removed": list(removed_names),
            "evicted": evicted,
            "functions": len(entries),
        }

    def _evict(
        self,
        entries: Dict[str, CorpusEntry],
        index: LSHIndex,
        txn: MergeTransaction,
    ) -> List[str]:
        """LRU-evict down to ``max_functions`` (freshly upserted functions
        hold the newest touch stamps, so they are never victims)."""
        cap = self.config.max_functions
        if cap is None or len(entries) <= cap:
            return []
        victims = sorted(entries.values(), key=lambda e: e.touched)
        victims = victims[: len(entries) - cap]
        evicted: List[str] = []
        for entry in victims:
            func = self.module.get_function(entry.name)
            txn.capture(func)
            if func.callers():
                func.drop_body()
                func.internal = False
            else:
                func.erase_from_parent()
            index.remove(entry.name)
            del entries[entry.name]
            evicted.append(entry.name)
        self.evicted_functions += len(evicted)
        return evicted

    # -- query (the lock-free read path) -----------------------------------------------
    def query(
        self,
        name: Optional[str] = None,
        text: Optional[str] = None,
        limit: int = 10,
    ) -> Dict[str, object]:
        """Best-match candidates against the current snapshot.

        Either *name* (a resident corpus function) or *text* (an IR module
        defining exactly one probe function, fingerprinted through the
        shared cache but never inserted).  Entirely lock-free: the snapshot
        reference is read once, so a concurrent commit cannot tear the
        result.
        """
        if (name is None) == (text is None):
            raise DeltaError("query needs exactly one of 'name' or 'text'")
        snap = self._snapshot
        stats = LSHQueryStats()
        if name is not None:
            if name not in snap.entries:
                raise DeltaError(f"unknown function {name!r}")
            matches = snap.index.query(name, stats)
        else:
            probe_mod = parse_module(text, name="probe")
            verify_module(probe_mod)
            probes = probe_mod.defined_functions()
            if len(probes) != 1:
                raise DeltaError(
                    "probe text must define exactly one function, "
                    f"got {len(probes)}"
                )
            fp = minhash_module(
                probes, self.minhash_config, self.encoding,
                cache=self.fingerprints,
            )[0]
            matches = snap.index.probe(fp, stats)
        matches.sort(key=lambda kv: (-kv[1], kv[0]))
        if limit is not None:
            matches = matches[:limit]
        return {
            "version": snap.version,
            "matches": [
                {"name": key, "similarity": sim} for key, sim in matches
            ],
            "buckets_probed": stats.buckets_probed,
            "candidates": stats.candidates_seen,
        }

    def best_match(self, name: str) -> Optional[Tuple[str, float]]:
        """Single nearest neighbour of a resident function (test hook —
        the serial-identity harness compares this against a replayed
        plain index)."""
        snap = self._snapshot
        if name not in snap.entries:
            raise DeltaError(f"unknown function {name!r}")
        return snap.index.best_match(name)

    # -- merge (the hot pipeline) ------------------------------------------------------
    def merge_text(
        self, module_text: str, use_result_cache: bool = True
    ) -> Dict[str, object]:
        """Run the one-shot-identical merge pipeline over *module_text*.

        Steady-state repeats hit the whole-result LRU (keyed by request
        digest); ``use_result_cache=False`` exercises the pipeline-warm
        path where only the content-addressed fingerprint/alignment/plan
        caches help.
        """
        digest = hashlib.sha256(module_text.encode("utf-8")).hexdigest()
        if use_result_cache:
            with self._results_lock:
                cached = self._results.get(digest)
                if cached is not None:
                    self._results.move_to_end(digest)
                    self.result_hits += 1
                    hit = dict(cached)
                    hit["cached"] = True
                    return hit
                self.result_misses += 1

        module = parse_module(module_text, name="request")
        verify_module(module)
        with self._merge_lock:
            before = list(module.functions)
            ranker = MinHashLSHRanker(cache=self.fingerprints)
            pass_ = FunctionMergingPass(
                ranker, self.config.pass_config(), alignment_engine=self.engine
            )
            report = pass_.run(module)
            merged_text = print_module(module)
            # The request module dies with this call; purge every memo
            # keyed by its object ids *while still holding references*, or
            # a later request could alias recycled ids into stale memos.
            keep_alive = {id(f): f for f in before}
            for func in module.functions:
                keep_alive.setdefault(id(func), func)
            for func in keep_alive.values():
                self.engine.invalidate_function(func)

        result: Dict[str, object] = {
            "module": merged_text,
            "strategy": report.strategy,
            "functions": report.num_functions,
            "merges": report.merges,
            "comparisons": report.comparisons,
            "size_before": report.size_before,
            "size_after": report.size_after,
            "outcomes": {
                k: v for k, v in report.outcome_counts().items() if v
            },
            "cached": False,
        }
        if use_result_cache:
            with self._results_lock:
                self._results[digest] = dict(result)
                while len(self._results) > self.config.result_cache_size:
                    self._results.popitem(last=False)
                    self.result_evictions += 1
        return result

    def merge_corpus(self, use_result_cache: bool = True) -> Dict[str, object]:
        """Merge the whole resident corpus.

        Runs on a private reparse of the corpus text so the resident
        module (and every published snapshot) stays untouched — merging is
        a *read* of the corpus, not a mutation of it.
        """
        return self.merge_text(self.dump(), use_result_cache=use_result_cache)

    # -- maintenance -------------------------------------------------------------------
    def dump(self) -> str:
        """The corpus as IR text (cached per version)."""
        with self._write_lock:
            snap = self._snapshot
            if self._dump_cache is not None and self._dump_cache[0] == snap.version:
                return self._dump_cache[1]
            text = print_module(self.module)
            self._dump_cache = (snap.version, text)
            return text

    def compact(self) -> Dict[str, int]:
        """Force an index compaction, published as a fresh snapshot (same
        version — compaction is invisible to query semantics)."""
        with self._write_lock:
            snap = self._snapshot
            index = snap.index.clone()
            index.compact()
            self._snapshot = CorpusSnapshot(
                version=snap.version, index=index, entries=snap.entries
            )
            return index.index_stats()

    def flush(self, directory: Optional[str] = None) -> Dict[str, object]:
        """Spill the fingerprint cache to a :class:`FingerprintStore`."""
        directory = directory or self.config.store_dir
        if not directory:
            raise DeltaError("no fingerprint store directory configured")
        if os.path.exists(os.path.join(directory, "header.json")):
            store = FingerprintStore.open(directory)
        else:
            store = FingerprintStore.create(
                directory, self.minhash_config, store_encoded=False
            )
        spilled = self.fingerprints.spill_to_store(store)
        return {"directory": directory, "spilled": spilled}

    def cache_counters(self) -> Dict[str, int]:
        """Every cache counter, flattened — the daemon diffs this around
        each request to report per-request hit/miss/eviction deltas."""
        fp = self.fingerprints.stats
        align = self.engine.cache.stats
        plans = self.engine.plans.stats
        return {
            "fingerprint_hits": fp.hits,
            "fingerprint_misses": fp.misses,
            "fingerprint_evictions": fp.evictions,
            "fingerprint_disk_loaded": fp.disk_entries_loaded,
            "fingerprint_disk_skipped_version": fp.disk_files_skipped_version,
            "fingerprint_disk_skipped_invalid": fp.disk_files_skipped_invalid,
            "alignment_hits": align.hits,
            "alignment_misses": align.misses,
            "alignment_evictions": align.evictions,
            "plan_hits": plans.hits,
            "plan_misses": plans.misses,
            "plan_evictions": plans.evictions,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "result_evictions": self.result_evictions,
        }

    def stats(self) -> Dict[str, object]:
        """Corpus, index and cache counters (the ``stats`` op)."""
        snap = self._snapshot
        return {
            "version": snap.version,
            "functions": len(snap.entries),
            "commits": self.commits,
            "rollbacks": self.rollbacks,
            "evicted_functions": self.evicted_functions,
            "index": snap.index.index_stats(),
            "caches": self.cache_counters(),
            "config": self.config.to_dict(),
        }
