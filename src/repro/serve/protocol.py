"""Line-delimited JSON protocol spoken by ``repro serve`` / ``repro client``.

One request per line, one response per line, UTF-8, no framing beyond the
newline.  Requests::

    {"id": <any>, "op": "<op>", ...params}

Responses::

    {"id": <id>, "ok": true,  "result": {...}, "cache": {...}}
    {"id": <id>, "ok": false, "error": {"type": ..., "message": ...}, "cache": {...}}

``cache`` carries the per-request deltas of every cache counter
(fingerprint/alignment/plan/result hits, misses, evictions) — only the
counters this request moved.

Ops (see ``docs/serving.md`` for the full reference):

* ``ping``     — liveness + current corpus version.
* ``submit``   — apply a delta: ``module`` (IR text whose defined
  functions are added/changed) and/or ``removed`` (names to drop).
* ``query``    — best-match candidates for ``name`` (a corpus function)
  or ``text`` (an IR module defining exactly one probe function);
  ``limit`` bounds the matches returned.
* ``merge``    — run the merge pipeline on ``module`` text, or on the
  whole corpus with ``corpus: true``; ``no_result_cache: true`` bypasses
  the merged-result cache (the pipeline-warm path).
* ``dump``     — the corpus as IR text.
* ``stats``    — corpus/index/cache counters.
* ``flush``    — spill the fingerprint cache to the configured (or given
  ``directory``) FingerprintStore.
* ``compact``  — force a corpus index compaction.
* ``shutdown`` — stop the daemon after responding.
"""

from __future__ import annotations

import json
from typing import Dict

__all__ = ["OPS", "ProtocolError", "encode_message", "decode_message"]

OPS = (
    "ping",
    "submit",
    "query",
    "merge",
    "dump",
    "stats",
    "flush",
    "compact",
    "shutdown",
)


class ProtocolError(ValueError):
    """A malformed request line or unknown operation."""


def encode_message(message: Dict[str, object]) -> bytes:
    """One protocol line: compact, key-sorted JSON + newline.

    Key-sorted so identical payloads are identical bytes — the property
    the byte-reproducible manifest and transcript tests lean on.
    """
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_message(line) -> Dict[str, object]:
    """Parse one protocol line into a dict, raising :class:`ProtocolError`."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message
