"""Configuration for the merge-as-a-service daemon."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..merge.pass_ import PassConfig

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Daemon-wide options.

    ``threshold``/``alignment``/``verify`` configure the merge pipeline
    exactly like the one-shot CLI (the defaults match ``repro merge -s
    f3m``, which is what the decision-identity guarantee is stated
    against).  ``shards`` selects the band-sharded corpus index.
    ``compact_ratio`` is the corpus index's auto-compaction threshold:
    compact when tombstones exceed this fraction of live entries — a
    long-lived daemon defaults to 0.5 (earlier than the one-shot 1.0) so
    query-time tombstone skipping never degrades; ``None`` disables it.
    ``max_functions`` caps the corpus: beyond it, the least-recently
    upserted functions are evicted (demoted to declarations while still
    referenced, erased otherwise).  ``fingerprint_cache_size`` /
    ``result_cache_size`` bound the content-addressed caches.
    ``store_dir`` names a :class:`~repro.fingerprint.store.FingerprintStore`
    directory: fingerprints are warmed from it at startup and spilled to
    it on ``flush``.  ``manifest_dir`` enables one ``kind="serve"``
    manifest per request (deterministic — byte-reproducible across
    identical sessions).
    """

    threshold: float = 0.0
    alignment: str = "linear"
    verify: bool = True
    shards: int = 1
    compact_ratio: Optional[float] = 0.5
    max_functions: Optional[int] = None
    fingerprint_cache_size: int = 1 << 20
    result_cache_size: int = 64
    store_dir: Optional[str] = None
    manifest_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.compact_ratio is not None and self.compact_ratio <= 0:
            raise ValueError("compact_ratio must be positive (or None)")
        if self.max_functions is not None and self.max_functions < 1:
            raise ValueError("max_functions must be >= 1 (or None)")
        if self.result_cache_size < 1:
            raise ValueError("result_cache_size must be >= 1")

    def pass_config(self) -> PassConfig:
        """The merge-pipeline config served to every ``merge`` request."""
        return PassConfig(
            threshold=self.threshold,
            alignment=self.alignment,
            verify=self.verify,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "alignment": self.alignment,
            "verify": self.verify,
            "shards": self.shards,
            "compact_ratio": self.compact_ratio,
            "max_functions": self.max_functions,
            "fingerprint_cache_size": self.fingerprint_cache_size,
            "result_cache_size": self.result_cache_size,
            "store_dir": self.store_dir,
            "manifest_dir": self.manifest_dir,
        }
