"""The merge-as-a-service daemon: request dispatch plus transports.

:class:`ServeDaemon` is transport-agnostic — ``handle`` maps one request
dict to one response dict.  Two transports wrap it: a stdio loop (one
client, `repro serve --stdio`, also what :meth:`ServeClient.spawn` talks
to) and a threaded unix-domain-socket server (many concurrent clients,
which is where the snapshot isolation of
:class:`~repro.serve.db.FingerprintDatabase` earns its keep).

Error containment: any exception out of the database — client mistakes,
parse failures, and injected ``serve_commit`` faults alike — becomes an
``ok: false`` response and the daemon keeps serving; the transaction
rollback in the database guarantees the corpus is back in its pre-request
state.  An injected ``serve_disconnect`` fault fires *after* the response
is built, modelling a client that vanished mid-request: the transport
drops that response (and, for sockets, the connection) while the daemon's
state — including a commit that had already been published — stays intact.

When ``manifest_dir`` is configured, every request writes one
``kind="serve"`` run manifest.  Serve manifests are deliberately free of
wall-clock data (``created_unix`` stays 0.0, no timings), so the manifest
stream of a request sequence is byte-reproducible run over run; use the
``stats`` op for timing-ish counters instead.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Dict, Optional, Tuple

from ..faults import FaultInjector
from ..obs.manifest import RunManifest, save_manifest
from .config import ServeConfig
from .db import FingerprintDatabase
from .protocol import OPS, ProtocolError, decode_message, encode_message

__all__ = ["ServeDaemon", "serve_stdio", "serve_unix"]


class ServeDaemon:
    """Dispatch protocol requests against one :class:`FingerprintDatabase`."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        faults: Optional[FaultInjector] = None,
        db: Optional[FingerprintDatabase] = None,
    ) -> None:
        self.db = db if db is not None else FingerprintDatabase(config, faults)
        self.config = self.db.config
        self.faults = faults if faults is not None else self.db.faults
        self.stopping = False
        self.requests = 0
        self.errors = 0
        self._manifest_seq = 0
        self._manifest_lock = threading.Lock()

    # -- dispatch ----------------------------------------------------------------------
    def handle(self, request: Dict[str, object]) -> Dict[str, object]:
        """One request dict in, one response dict out.

        Raises only when a ``serve_disconnect`` fault fires (the response
        exists but cannot be delivered); everything else is folded into an
        ``ok: false`` response.
        """
        self.requests += 1
        req_id = request.get("id") if isinstance(request, dict) else None
        before = self.db.cache_counters()
        op = None
        try:
            op = request.get("op")
            if op not in OPS:
                raise ProtocolError(f"unknown op {op!r}")
            result = self._dispatch(op, request)
            response: Dict[str, object] = {
                "id": req_id,
                "ok": True,
                "result": result,
            }
        except Exception as exc:
            self.errors += 1
            response = {
                "id": req_id,
                "ok": False,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            }
        after = self.db.cache_counters()
        response["cache"] = {
            key: after[key] - before[key]
            for key in after
            if after[key] != before[key]
        }
        if self.config.manifest_dir:
            self._write_manifest(op, response)
        if self.faults is not None:
            # Client-vanished fault: the response is complete (and any
            # commit already published) but delivery fails.
            self.faults.hit("serve_disconnect")
        return response

    def _dispatch(self, op: str, request: Dict[str, object]) -> Dict[str, object]:
        db = self.db
        if op == "ping":
            return {"version": db.version, "functions": len(db.snapshot.entries)}
        if op == "submit":
            return db.apply_delta(
                module_text=request.get("module"),
                removed=request.get("removed"),
            )
        if op == "query":
            return db.query(
                name=request.get("name"),
                text=request.get("text"),
                limit=request.get("limit", 10),
            )
        if op == "merge":
            use_cache = not request.get("no_result_cache", False)
            if request.get("corpus"):
                return db.merge_corpus(use_result_cache=use_cache)
            module_text = request.get("module")
            if not module_text:
                raise ProtocolError("merge needs 'module' text or 'corpus': true")
            return db.merge_text(module_text, use_result_cache=use_cache)
        if op == "dump":
            return {"version": db.version, "module": db.dump()}
        if op == "stats":
            stats = db.stats()
            stats["requests"] = self.requests
            stats["errors"] = self.errors
            return stats
        if op == "flush":
            return db.flush(directory=request.get("directory"))
        if op == "compact":
            return {"index": db.compact()}
        if op == "shutdown":
            self.stopping = True
            return {"stopping": True}
        raise ProtocolError(f"unknown op {op!r}")  # pragma: no cover

    # -- manifests ---------------------------------------------------------------------
    def _write_manifest(self, op: Optional[str], response: Dict[str, object]) -> None:
        with self._manifest_lock:
            self._manifest_seq += 1
            seq = self._manifest_seq
        result = response.get("result") or {}
        # Host paths would break byte-reproducibility of the manifests, so
        # they are elided from the recorded config.
        config = self.config.to_dict()
        config.pop("manifest_dir", None)
        config.pop("store_dir", None)
        manifest = RunManifest(
            kind="serve",
            strategy=str(op or "invalid"),
            config=config,
            module_name="corpus",
            functions=int(result.get("functions", 0) or 0),
            merges=int(result.get("merges", 0) or 0),
            size_before=int(result.get("size_before", 0) or 0),
            size_after=int(result.get("size_after", 0) or 0),
            metrics={
                "request_seq": seq,
                "ok": bool(response.get("ok")),
                "cache": dict(response.get("cache") or {}),
                "version": result.get("version"),
            },
        )
        directory = self.config.manifest_dir
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"serve-{seq:06d}-{manifest.strategy}.json"
        )
        save_manifest(manifest, path)


# ---------------------------------------------------------------------------
# Transports
# ---------------------------------------------------------------------------


def serve_stdio(daemon: ServeDaemon, stdin=None, stdout=None) -> None:
    """Serve one client over line-JSON on stdio (binary file objects)."""
    import sys

    stdin = stdin if stdin is not None else sys.stdin.buffer
    stdout = stdout if stdout is not None else sys.stdout.buffer
    for line in stdin:
        if not line.strip():
            continue
        try:
            request = decode_message(line)
        except ProtocolError as exc:
            daemon.errors += 1
            response = {
                "id": None,
                "ok": False,
                "error": {"type": "ProtocolError", "message": str(exc)},
                "cache": {},
            }
            stdout.write(encode_message(response))
            stdout.flush()
            continue
        try:
            response = daemon.handle(request)
        except Exception:
            # serve_disconnect containment: the response is undeliverable,
            # the daemon (and any published commit) is fine — keep serving.
            continue
        stdout.write(encode_message(response))
        stdout.flush()
        if daemon.stopping:
            break


def serve_unix(daemon: ServeDaemon, path: str, ready=None) -> None:
    """Serve many clients over a unix domain socket, one thread each.

    Returns once a ``shutdown`` request has been answered and every
    connection handler has unwound.  *ready* (a ``threading.Event``) is
    set once the socket is listening — test/benchmark rendezvous.
    """
    if os.path.exists(path):
        os.unlink(path)
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        listener.bind(path)
        listener.listen(16)
        listener.settimeout(0.1)
        if ready is not None:
            ready.set()
        workers = []
        while not daemon.stopping:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            worker = threading.Thread(
                target=_serve_connection, args=(daemon, conn), daemon=True
            )
            worker.start()
            workers.append(worker)
        for worker in workers:
            worker.join(timeout=5.0)
    finally:
        listener.close()
        if os.path.exists(path):
            os.unlink(path)


def _serve_connection(daemon: ServeDaemon, conn: socket.socket) -> None:
    reader = conn.makefile("rb")
    try:
        for line in reader:
            if not line.strip():
                continue
            try:
                request = decode_message(line)
            except ProtocolError as exc:
                daemon.errors += 1
                response = {
                    "id": None,
                    "ok": False,
                    "error": {"type": "ProtocolError", "message": str(exc)},
                    "cache": {},
                }
                conn.sendall(encode_message(response))
                continue
            try:
                response = daemon.handle(request)
            except Exception:
                # Simulated client disconnect: drop the connection, state
                # stays consistent for every other client.
                break
            conn.sendall(encode_message(response))
            if daemon.stopping:
                break
    except (BrokenPipeError, ConnectionResetError, OSError):
        pass
    finally:
        reader.close()
        conn.close()
