"""Locality Sensitive Hashing index over MinHash fingerprints (Section III-C).

Fingerprints are split into ``b`` bands of ``r`` rows; each band hashes into
a bucket keyed by ``(band_index, band_hash)``.  A query only compares the
querying fingerprint against functions sharing at least one bucket — the
vast majority of pairwise comparisons never happen.

Over-populated buckets (very common instruction subsequences) would make
bucket scans quadratic, so the number of fingerprint comparisons per bucket
is capped (default 100, paper Section III-C / IV-E).

Internally all fingerprints live in one ``(n, k)`` uint32 matrix so batched
similarity evaluation is a single vectorized comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, List, Optional, Set, Tuple, TypeVar

import numpy as np

from ..fingerprint.minhash import MinHashFingerprint

__all__ = ["LSHIndex", "LSHQueryStats", "BucketStats"]

KeyT = TypeVar("KeyT", bound=Hashable)


@dataclass
class LSHQueryStats:
    """Work accounting for a single query (drives Fig. 13/16 benches)."""

    buckets_probed: int = 0
    candidates_seen: int = 0
    comparisons: int = 0
    capped_buckets: int = 0


@dataclass
class BucketStats:
    """Distribution of bucket populations (Section IV-E analysis)."""

    total_buckets: int
    max_population: int
    overpopulated: int  # population >= 128, the paper's reporting cutoff
    populations: List[int] = field(default_factory=list)


class LSHIndex(Generic[KeyT]):
    """Banded LSH index mapping band hashes to member keys."""

    def __init__(self, rows: int = 2, bands: int = 100, bucket_cap: Optional[int] = 100) -> None:
        if rows <= 0 or bands <= 0:
            raise ValueError("rows and bands must be positive")
        self.rows = rows
        self.bands = bands
        self.bucket_cap = bucket_cap
        self._buckets: Dict[int, List[int]] = {}
        self._keys: List[KeyT] = []
        self._row_of: Dict[KeyT, int] = {}
        self._fingerprints: List[MinHashFingerprint] = []
        self._bands_of: List[List[int]] = []
        self._alive: List[bool] = []
        self._live_count = 0
        # Fingerprint rows live in one capacity-doubled matrix so inserts
        # (including merged functions re-entering the index) stay O(1)
        # amortized and batched similarity stays a single vector op.
        self._matrix_buf: Optional[np.ndarray] = None

    # -- maintenance -----------------------------------------------------------------
    def __len__(self) -> int:
        return self._live_count

    def __contains__(self, key: KeyT) -> bool:
        row = self._row_of.get(key)
        return row is not None and self._alive[row]

    def fingerprint(self, key: KeyT) -> MinHashFingerprint:
        return self._fingerprints[self._row_of[key]]

    def insert(self, key: KeyT, fingerprint: MinHashFingerprint) -> None:
        if fingerprint.config.k < self.rows * self.bands:
            raise ValueError(
                f"fingerprint size {fingerprint.config.k} < rows*bands "
                f"{self.rows * self.bands}"
            )
        if key in self._row_of:
            raise ValueError(f"duplicate key {key!r}")
        row = len(self._keys)
        self._keys.append(key)
        self._row_of[key] = row
        self._fingerprints.append(fingerprint)
        self._alive.append(True)
        self._live_count += 1
        self._append_row(fingerprint.values)
        hashes = fingerprint.band_hashes(self.rows)[: self.bands].astype(np.int64)
        # One integer key per band: (band_index << 32) | band_hash.
        bucket_keys = (
            (np.arange(len(hashes), dtype=np.int64) << 32) | hashes
        ).tolist()
        self._bands_of.append(bucket_keys)
        buckets = self._buckets
        for bucket_key in bucket_keys:
            bucket = buckets.get(bucket_key)
            if bucket is None:
                buckets[bucket_key] = [row]
            else:
                bucket.append(row)

    def remove(self, key: KeyT) -> None:
        """Lazily remove *key*; it stops appearing in query results."""
        row = self._row_of.get(key)
        if row is not None and self._alive[row]:
            self._alive[row] = False
            self._live_count -= 1

    def _append_row(self, values: np.ndarray) -> None:
        n = len(self._fingerprints) - 1
        if self._matrix_buf is None:
            self._matrix_buf = np.empty((256, values.shape[0]), dtype=np.uint32)
        elif n >= self._matrix_buf.shape[0]:
            grown = np.empty(
                (self._matrix_buf.shape[0] * 2, self._matrix_buf.shape[1]),
                dtype=np.uint32,
            )
            grown[:n] = self._matrix_buf[:n]
            self._matrix_buf = grown
        self._matrix_buf[n] = values

    def _matrix(self) -> np.ndarray:
        if self._matrix_buf is None:
            return np.empty((0, self.rows * self.bands), dtype=np.uint32)
        return self._matrix_buf[: len(self._fingerprints)]

    # -- queries ---------------------------------------------------------------------
    def query(
        self, key: KeyT, stats: Optional[LSHQueryStats] = None
    ) -> List[Tuple[KeyT, float]]:
        """All live candidates sharing ≥1 bucket with *key*, with similarities.

        Within each bucket at most ``bucket_cap`` members are examined;
        highly similar pairs share several buckets, so a cap rarely hides
        them (paper Section IV-E).
        """
        stats = stats if stats is not None else LSHQueryStats()
        me = self._row_of[key]
        candidates = self._candidate_rows(me, stats)
        stats.candidates_seen += len(candidates)
        stats.comparisons += len(candidates)
        if not candidates:
            return []
        sims = self._batch_similarity(me, candidates)
        keys = self._keys
        return [(keys[row], float(s)) for row, s in zip(candidates, sims)]

    def _candidate_rows(self, me: int, stats: LSHQueryStats) -> List[int]:
        alive = self._alive
        cap = self.bucket_cap
        seen: Set[int] = {me}
        candidates: List[int] = []
        for bucket_key in self._bands_of[me]:
            members = self._buckets.get(bucket_key, ())
            stats.buckets_probed += 1
            # The cap bounds how much of an over-populated bucket we are
            # willing to scan: entries beyond the window are never examined
            # (Section III-C: "we limit the number of fingerprint
            # comparisons per bucket to 100").
            if cap is not None and len(members) > cap:
                stats.capped_buckets += 1
                members = members[:cap]
            for row in members:
                if row in seen or not alive[row]:
                    continue
                seen.add(row)
                candidates.append(row)
        return candidates

    def _batch_similarity(self, me: int, candidates: List[int]) -> np.ndarray:
        # Batched estimated-Jaccard: fraction of equal minhash entries.
        matrix = self._matrix()
        return (matrix[candidates] == matrix[me][None, :]).mean(axis=1)

    def best_match(
        self, key: KeyT, stats: Optional[LSHQueryStats] = None
    ) -> Optional[Tuple[KeyT, float]]:
        """The nearest live candidate by estimated Jaccard similarity."""
        stats = stats if stats is not None else LSHQueryStats()
        me = self._row_of[key]
        candidates = self._candidate_rows(me, stats)
        stats.candidates_seen += len(candidates)
        stats.comparisons += len(candidates)
        if not candidates:
            return None
        sims = self._batch_similarity(me, candidates)
        best = int(sims.argmax())
        return self._keys[candidates[best]], float(sims[best])

    # -- diagnostics ------------------------------------------------------------------
    def bucket_stats(self) -> BucketStats:
        populations = sorted(
            (
                sum(1 for row in members if self._alive[row])
                for members in self._buckets.values()
            ),
            reverse=True,
        )
        populations = [p for p in populations if p > 0]
        return BucketStats(
            total_buckets=len(populations),
            max_population=populations[0] if populations else 0,
            overpopulated=sum(1 for p in populations if p >= 128),
            populations=populations,
        )
