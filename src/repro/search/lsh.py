"""Locality Sensitive Hashing index over MinHash fingerprints (Section III-C).

Fingerprints are split into ``b`` bands of ``r`` rows; each band hashes into
a bucket keyed by ``(band_index, band_hash)``.  A query only compares the
querying fingerprint against functions sharing at least one bucket — the
vast majority of pairwise comparisons never happen.

Over-populated buckets (very common instruction subsequences) would make
bucket scans quadratic, so the number of fingerprint comparisons per bucket
is capped (default 100, paper Section III-C / IV-E).

Internally all fingerprints live in one ``(n, k)`` uint32 matrix and all
band bucket keys in one ``(n, b)`` int64 matrix, both capacity-doubled, so
batched similarity evaluation is a single vectorized comparison and
:meth:`LSHIndex.insert_batch` band-hashes a whole module at once.  Removal
is lazy (tombstones); when live rows drop below half the stored rows the
index compacts itself so long remerge runs do not degrade.

The bucket layout itself (:class:`ColumnarBuckets`, :func:`band_bucket_keys`)
is module-level and band-range aware so :mod:`repro.search.sharded` can build
the identical structure per band slice in worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generic, Hashable, Iterator, List, Optional, Sequence, Set, Tuple, TypeVar

import numpy as np

from ..fingerprint.fnv import fnv1a_32_array_u32
from ..fingerprint.minhash import MinHashFingerprint
from ..obs import trace

__all__ = [
    "LSHIndex",
    "LSHQueryStats",
    "BucketStats",
    "ColumnarBuckets",
    "build_columnar_buckets",
    "band_bucket_keys",
]

KeyT = TypeVar("KeyT", bound=Hashable)

# Compaction triggers when fewer than half the stored rows are live, but
# never below this row count — tiny indexes are not worth rebuilding.
_COMPACT_MIN_ROWS = 64


def band_bucket_keys(
    values: np.ndarray,
    rows: int,
    bands: int,
    band_lo: int = 0,
    band_hi: Optional[int] = None,
) -> np.ndarray:
    """Band bucket keys ``(band_index << 32) | band_hash`` for a value matrix.

    *values* is the ``(n, k)`` uint32 fingerprint matrix; the result is the
    ``(n, band_hi - band_lo)`` int64 key matrix for the half-open band range
    ``[band_lo, band_hi)``.  Band indices in the keys are always *global*
    (relative to band 0), so keys computed per band slice are bit-identical
    to the corresponding columns of a whole-range computation — the property
    band-sharded indexes rely on.
    """
    if band_hi is None:
        band_hi = bands
    if not (0 <= band_lo <= band_hi <= bands):
        raise ValueError(f"invalid band range [{band_lo}, {band_hi}) for bands={bands}")
    n = values.shape[0]
    width = band_hi - band_lo
    if n == 0 or width == 0:
        return np.empty((n, width), dtype=np.int64)
    usable = values[:, band_lo * rows : band_hi * rows].reshape(n * width, rows)
    hashes = fnv1a_32_array_u32(usable).astype(np.int64).reshape(n, width)
    return (np.arange(band_lo, band_hi, dtype=np.int64)[None, :] << 32) | hashes


class ColumnarBuckets:
    """Columnar bucket layer over a contiguous band range.

    Built from one stable argsort over every (band, hash) key of a batch.
    Bucket membership is stored as one sorted row array plus, per original
    (row, band) flat position, the [start, end) bounds of that position's
    bucket — no per-bucket Python dict or list is ever built eagerly (a
    key->slice dict over ~n*b/3 buckets costs more than the argsort itself
    on large modules).  Bucket member lists materialize lazily on first
    probe and are memoized keyed by slice start (unique per bucket).
    """

    __slots__ = ("rows", "sorted_keys", "starts_flat", "ends_flat", "count", "width", "_lists")

    def __init__(
        self,
        rows: np.ndarray,
        sorted_keys: np.ndarray,
        starts_flat: np.ndarray,
        ends_flat: np.ndarray,
        count: int,
        width: int,
    ) -> None:
        self.rows = rows
        self.sorted_keys = sorted_keys
        self.starts_flat = starts_flat
        self.ends_flat = ends_flat
        self.count = count  # member rows covered by this layer
        self.width = width  # bands covered by this layer
        self._lists: Dict[int, List[int]] = {}

    def slice_of(self, bucket_key: int) -> Optional[Tuple[int, int]]:
        """Locate a bucket by key (binary search) — for post-batch rows and
        diagnostics; batch rows read their own bounds from flat positions."""
        sk = self.sorted_keys
        start = int(np.searchsorted(sk, bucket_key, "left"))
        if start == sk.shape[0] or int(sk[start]) != bucket_key:
            return None
        end = int(np.searchsorted(sk, bucket_key, "right"))
        return start, end

    def members(self, start: int, end: int) -> List[int]:
        """The member list of a bucket, materialized+memoized."""
        cached = self._lists.get(start)
        if cached is not None:
            return cached
        members = self.rows[start:end].tolist()
        self._lists[start] = members
        return members

    def bounds_of_row(self, row: int) -> Iterator[Tuple[int, int]]:
        """Per-band [start, end) bucket bounds of a batch row, in band order."""
        flat = row * self.width
        return zip(
            self.starts_flat[flat : flat + self.width].tolist(),
            self.ends_flat[flat : flat + self.width].tolist(),
        )

    def live_populations(self, alive: Sequence[bool]) -> Dict[int, int]:
        """Live member count per bucket key, in one segmented sum."""
        sk = self.sorted_keys
        if not sk.shape[0]:
            return {}
        alive_rows = np.asarray(alive, dtype=np.int64)[self.rows]
        first = np.empty(sk.shape[0], dtype=bool)
        first[0] = True
        np.not_equal(sk[1:], sk[:-1], out=first[1:])
        starts = np.flatnonzero(first)
        pops = np.add.reduceat(alive_rows, starts)
        return dict(zip(sk[starts].tolist(), pops.tolist()))


def build_columnar_buckets(bucket_keys: np.ndarray) -> ColumnarBuckets:
    """Group all ``n*width`` (band, hash) keys with one stable argsort.

    Row-major flattening keeps rows ascending within a bucket, i.e. exactly
    the sequential-insert order.
    """
    n, width = bucket_keys.shape
    flat_keys = np.ascontiguousarray(bucket_keys).ravel()
    order = np.argsort(flat_keys, kind="stable")
    sorted_keys = flat_keys[order]
    rows = order // width
    boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
    starts = np.concatenate([np.zeros(1, dtype=np.int64), boundaries])
    ends = np.concatenate([boundaries, np.array([sorted_keys.shape[0]], dtype=np.int64)])
    # Scatter each bucket's [start, end) bounds back to every flat
    # (row, band) position that belongs to it: a probing row reads its
    # own bucket's bounds straight from its flat position, no key lookup.
    counts = ends - starts
    starts_flat = np.empty(order.shape[0], dtype=np.int64)
    starts_flat[order] = np.repeat(starts, counts)
    ends_flat = np.empty(order.shape[0], dtype=np.int64)
    ends_flat[order] = np.repeat(ends, counts)
    return ColumnarBuckets(rows, sorted_keys, starts_flat, ends_flat, n, width)


@dataclass
class LSHQueryStats:
    """Work accounting for a single query (drives Fig. 13/16 benches)."""

    buckets_probed: int = 0
    candidates_seen: int = 0
    comparisons: int = 0
    capped_buckets: int = 0


@dataclass
class BucketStats:
    """Distribution of bucket populations (Section IV-E analysis)."""

    total_buckets: int
    max_population: int
    overpopulated: int  # population >= 128, the paper's reporting cutoff
    populations: List[int] = field(default_factory=list)


class LSHIndex(Generic[KeyT]):
    """Banded LSH index mapping band hashes to member keys.

    ``compact_ratio`` controls auto-compaction: the index compacts itself
    when tombstones exceed ``compact_ratio`` times the live entries (the
    long-lived daemon knob — a low ratio keeps query-time tombstone
    skipping cheap, ``None`` disables auto-compaction entirely).  The
    default of 1.0 preserves the historical behaviour of compacting when
    live rows drop below half of the stored rows.
    """

    def __init__(
        self,
        rows: int = 2,
        bands: int = 100,
        bucket_cap: Optional[int] = 100,
        compact_ratio: Optional[float] = 1.0,
    ) -> None:
        if rows <= 0 or bands <= 0:
            raise ValueError("rows and bands must be positive")
        if compact_ratio is not None and compact_ratio <= 0:
            raise ValueError("compact_ratio must be positive (or None)")
        self.rows = rows
        self.bands = bands
        self.bucket_cap = bucket_cap
        self.compact_ratio = compact_ratio
        self.compactions = 0
        self.removals = 0
        # Cumulative counters surfaced via index_stats() so the obs metrics
        # registry sees query traffic and cap pressure, not just structure.
        self.queries = 0
        self.capped_bucket_hits = 0
        # Buckets have two layers with one insertion-order contract (batch
        # rows first, then later single inserts):
        #  * the *base* layer is a ColumnarBuckets built by insert_batch;
        #  * the *overflow* layer is a plain dict of lists fed by insert()
        #    for functions added after preprocessing (the remerge loop).
        self._buckets: Dict[int, List[int]] = {}
        self._base: Optional[ColumnarBuckets] = None
        self._base_count = 0  # rows covered by the base layer
        self._keys: List[KeyT] = []
        self._row_of: Dict[KeyT, int] = {}
        self._fingerprints: List[MinHashFingerprint] = []
        self._alive: List[bool] = []
        self._live_count = 0
        # Fingerprint rows and band bucket keys live in capacity-doubled
        # matrices so inserts (including merged functions re-entering the
        # index) stay O(1) amortized and batched similarity stays a single
        # vector op.
        self._matrix_buf: Optional[np.ndarray] = None
        self._bands_buf: Optional[np.ndarray] = None
        # Set when the matrices are shared with a clone() snapshot; any
        # in-place shuffle (compaction) must un-share them first.
        self._buffers_shared = False

    # -- maintenance -----------------------------------------------------------------
    def __len__(self) -> int:
        return self._live_count

    def __contains__(self, key: KeyT) -> bool:
        row = self._row_of.get(key)
        return row is not None and self._alive[row]

    def fingerprint(self, key: KeyT) -> MinHashFingerprint:
        return self._fingerprints[self._row_of[key]]

    def _check_fingerprint(self, fingerprint: MinHashFingerprint) -> None:
        if fingerprint.config.k < self.rows * self.bands:
            raise ValueError(
                f"fingerprint size {fingerprint.config.k} < rows*bands "
                f"{self.rows * self.bands}"
            )

    def insert(self, key: KeyT, fingerprint: MinHashFingerprint) -> None:
        self._check_fingerprint(fingerprint)
        existing = self._row_of.get(key)
        if existing is not None and self._alive[existing]:
            raise ValueError(f"duplicate key {key!r}")
        # A tombstoned key may re-enter (a changed function re-submitted to
        # a long-lived index): the key takes over a fresh row, the dead row
        # stays unreachable until compaction forgets it.
        row = len(self._keys)
        self._keys.append(key)
        self._row_of[key] = row
        self._fingerprints.append(fingerprint)
        self._alive.append(True)
        self._live_count += 1
        self._ensure_capacity(row + 1, fingerprint.config.k)
        self._matrix_buf[row] = fingerprint.values
        hashes = fingerprint.band_hashes(self.rows)[: self.bands].astype(np.int64)
        # One integer key per band: (band_index << 32) | band_hash.
        bucket_keys = (
            (np.arange(len(hashes), dtype=np.int64) << 32) | hashes
        )
        self._bands_buf[row] = bucket_keys
        self._bucket_insert_row(row, bucket_keys.tolist())

    def insert_batch(
        self, keys: Sequence[KeyT], fingerprints: Sequence[MinHashFingerprint]
    ) -> None:
        """Insert many members at once, band-hashing them in one pass.

        Equivalent to (and bit-identical with) inserting the pairs one by
        one in order, but the band hashes of the whole batch are one
        vectorized FNV-1a call and the fingerprint matrix is copied in
        bulk.
        """
        if len(keys) != len(fingerprints):
            raise ValueError("keys and fingerprints must have equal length")
        n = len(keys)
        if n == 0:
            return
        for key in keys:
            existing = self._row_of.get(key)
            if existing is not None and self._alive[existing]:
                raise ValueError(f"duplicate key {key!r}")
        if len(set(keys)) != n:
            raise ValueError("duplicate key inside batch")
        for fp in fingerprints:
            self._check_fingerprint(fp)

        base_row = len(self._keys)
        k = fingerprints[0].config.k
        self._ensure_capacity(base_row + n, k)
        values = np.stack([fp.values for fp in fingerprints])
        self._matrix_buf[base_row : base_row + n] = values

        bucket_keys = band_bucket_keys(values, self.rows, self.bands)
        self._bands_buf[base_row : base_row + n] = bucket_keys

        for offset, key in enumerate(keys):
            row = base_row + offset
            self._keys.append(key)
            self._row_of[key] = row
            self._alive.append(True)
        self._fingerprints.extend(fingerprints)
        self._live_count += n

        if base_row == 0 and self._bucket_layers_empty():
            # Columnar base layer: one stable argsort over all n*b keys.
            self._build_base(bucket_keys)
        else:
            for offset, row_keys in enumerate(bucket_keys.tolist()):
                self._bucket_insert_row(base_row + offset, row_keys)

    def remove(self, key: KeyT) -> None:
        """Lazily remove *key*; it stops appearing in query results.

        When tombstones exceed ``compact_ratio`` times the live rows the
        index compacts itself (default ratio 1.0: tombstones outnumber
        live rows).
        """
        row = self._row_of.get(key)
        if row is not None and self._alive[row]:
            self._alive[row] = False
            self._live_count -= 1
            self.removals += 1
            ratio = self.compact_ratio
            if ratio is not None:
                stored = len(self._keys)
                if (
                    stored >= _COMPACT_MIN_ROWS
                    and stored - self._live_count > ratio * self._live_count
                ):
                    self.compact()

    def compact(self) -> None:
        """Drop tombstoned rows and rebuild the bucket map.

        Relative insertion order of live rows is preserved, so the
        cap-window semantics of over-populated buckets stay stable.
        Removed keys are forgotten entirely (their rows, fingerprints and
        key mappings are freed).
        """
        survivors = [row for row, alive in enumerate(self._alive) if alive]
        n = len(survivors)
        self._keys = [self._keys[row] for row in survivors]
        self._fingerprints = [self._fingerprints[row] for row in survivors]
        self._alive = [True] * n
        self._row_of = {key: row for row, key in enumerate(self._keys)}
        if self._matrix_buf is not None:
            if self._buffers_shared:
                # A clone() snapshot still reads these rows — shuffle a
                # private copy instead of corrupting the shared matrices.
                self._matrix_buf = self._matrix_buf.copy()
                self._bands_buf = self._bands_buf.copy()
                self._buffers_shared = False
            idx = np.array(survivors, dtype=np.int64)
            self._matrix_buf[:n] = self._matrix_buf[idx]
            self._bands_buf[:n] = self._bands_buf[idx]
        self._clear_buckets()
        if n:
            self._build_base(self._bands_buf[:n])
        self.compactions += 1

    # -- snapshot clones ---------------------------------------------------------------
    def clone(self) -> "LSHIndex[KeyT]":
        """A copy-on-write clone for snapshot-isolated incremental commits.

        The clone shares the append-only fingerprint/band matrices with its
        source — appends by the clone land past the source's row count and
        are invisible to it — and shares the immutable columnar base bucket
        layer (its lazy member-list memo fills are idempotent).  All
        list/dict bookkeeping is copied, so tombstones, overflow buckets
        and key mappings diverge independently.  Compaction and capacity
        growth un-share the matrices before mutating them in place.
        """
        dup = self.__class__.__new__(self.__class__)
        self._clone_into(dup)
        return dup

    def _clone_into(self, dup: "LSHIndex[KeyT]") -> None:
        dup.rows = self.rows
        dup.bands = self.bands
        dup.bucket_cap = self.bucket_cap
        dup.compact_ratio = self.compact_ratio
        dup.compactions = self.compactions
        dup.removals = self.removals
        dup.queries = self.queries
        dup.capped_bucket_hits = self.capped_bucket_hits
        dup._buckets = {key: list(rows) for key, rows in self._buckets.items()}
        dup._base = self._base
        dup._base_count = self._base_count
        dup._keys = list(self._keys)
        dup._row_of = dict(self._row_of)
        dup._fingerprints = list(self._fingerprints)
        dup._alive = list(self._alive)
        dup._live_count = self._live_count
        dup._matrix_buf = self._matrix_buf
        dup._bands_buf = self._bands_buf
        dup._buffers_shared = True
        self._buffers_shared = True

    # -- bucket layer (override surface for band-sharded subclasses) ------------------
    def _build_base(self, bucket_keys: np.ndarray) -> None:
        """Columnar bucket layer for rows ``0..n-1`` from their band keys."""
        self._base = build_columnar_buckets(bucket_keys)
        self._base_count = bucket_keys.shape[0]

    def _bucket_insert_row(self, row: int, row_keys: List[int]) -> None:
        """Append one row's band keys to the overflow bucket layer."""
        buckets = self._buckets
        for bucket_key in row_keys:
            bucket = buckets.get(bucket_key)
            if bucket is None:
                buckets[bucket_key] = [row]
            else:
                bucket.append(row)

    def _bucket_layers_empty(self) -> bool:
        return not self._buckets and self._base is None

    def _clear_buckets(self) -> None:
        """Reset every bucket layer (compaction rebuilds from scratch)."""
        self._buckets = {}
        self._base = None
        self._base_count = 0

    def _ensure_capacity(self, rows_needed: int, k: int) -> None:
        if self._matrix_buf is None:
            capacity = 256
            while capacity < rows_needed:
                capacity *= 2
            self._matrix_buf = np.empty((capacity, k), dtype=np.uint32)
            self._bands_buf = np.empty((capacity, self.bands), dtype=np.int64)
            return
        capacity = self._matrix_buf.shape[0]
        if rows_needed <= capacity:
            return
        # insert() may append bookkeeping before growing, so clamp to the
        # rows that actually exist in the old buffer.
        used = min(len(self._fingerprints), capacity)
        while capacity < rows_needed:
            capacity *= 2
        grown = np.empty((capacity, self._matrix_buf.shape[1]), dtype=np.uint32)
        grown[:used] = self._matrix_buf[:used]
        self._matrix_buf = grown
        grown_bands = np.empty((capacity, self.bands), dtype=np.int64)
        grown_bands[:used] = self._bands_buf[:used]
        self._bands_buf = grown_bands
        # Growth copied into fresh arrays, so no snapshot shares them.
        self._buffers_shared = False

    def _matrix(self) -> np.ndarray:
        if self._matrix_buf is None:
            return np.empty((0, self.rows * self.bands), dtype=np.uint32)
        return self._matrix_buf[: len(self._fingerprints)]

    # -- queries ---------------------------------------------------------------------
    def query(
        self, key: KeyT, stats: Optional[LSHQueryStats] = None
    ) -> List[Tuple[KeyT, float]]:
        """All live candidates sharing ≥1 bucket with *key*, with similarities.

        Within each bucket at most ``bucket_cap`` members are examined;
        highly similar pairs share several buckets, so a cap rarely hides
        them (paper Section IV-E).
        """
        stats = stats if stats is not None else LSHQueryStats()
        with trace.span("lsh_query") as sp:
            probed0, capped0 = stats.buckets_probed, stats.capped_buckets
            self.queries += 1
            me = self._row_of[key]
            candidates = self._candidate_rows(me, stats)
            stats.candidates_seen += len(candidates)
            stats.comparisons += len(candidates)
            sp.set(
                buckets_probed=stats.buckets_probed - probed0,
                capped_buckets=stats.capped_buckets - capped0,
                candidates=len(candidates),
            )
            if not candidates:
                return []
            sims = self._batch_similarity(me, candidates)
            keys = self._keys
            return [(keys[row], float(s)) for row, s in zip(candidates, sims)]

    def _base_slice_of_key(self, bucket_key: int) -> Optional[Tuple[int, int]]:
        if self._base is None:
            return None
        return self._base.slice_of(bucket_key)

    def _bucket_members(
        self, bucket_key: int, cap: Optional[int]
    ) -> Tuple[Sequence[int], int]:
        """Up to *cap* members of a bucket (insertion order) and its full size.

        Base-layer members come first (ascending batch rows), then overflow
        members in single-insert order — together exactly the order a
        sequential insert of the same functions would have produced.
        """
        slc = self._base_slice_of_key(bucket_key)
        base = self._base.members(*slc) if slc is not None else None
        overflow = self._buckets.get(bucket_key)
        if base is None:
            members: Sequence[int] = overflow if overflow is not None else ()
        elif overflow:
            members = base + overflow
        else:
            members = base
        total = len(members)
        if cap is not None and total > cap:
            return members[:cap], total
        return members, total

    def _candidate_rows(self, me: int, stats: LSHQueryStats) -> List[int]:
        alive = self._alive
        cap = self.bucket_cap
        seen: Set[int] = {me}
        candidates: List[int] = []
        row_keys = self._bands_buf[me].tolist()
        if me < self._base_count:
            # Batch row: its buckets' [start, end) bounds sit at its own
            # flat positions — two small tolists, no per-key lookup.
            bounds = self._base.bounds_of_row(me)
        else:
            bounds = None
        for bucket_key in row_keys:
            stats.buckets_probed += 1
            # The cap bounds how much of an over-populated bucket we are
            # willing to scan: entries beyond the window are never examined
            # (Section III-C: "we limit the number of fingerprint
            # comparisons per bucket to 100").
            if bounds is not None:
                start, end = next(bounds)
                base = self._base.members(start, end)
                overflow = self._buckets.get(bucket_key)
                members: Sequence[int] = base + overflow if overflow else base
                total = len(members)
                if cap is not None and total > cap:
                    members = members[:cap]
                    stats.capped_buckets += 1
                    self.capped_bucket_hits += 1
            else:
                members, total = self._bucket_members(bucket_key, cap)
                if cap is not None and total > cap:
                    stats.capped_buckets += 1
                    self.capped_bucket_hits += 1
            for row in members:
                if row in seen or not alive[row]:
                    continue
                seen.add(row)
                candidates.append(row)
        return candidates

    def _batch_similarity(self, me: int, candidates: List[int]) -> np.ndarray:
        # Batched estimated-Jaccard: fraction of equal minhash entries.
        matrix = self._matrix()
        return (matrix[candidates] == matrix[me][None, :]).mean(axis=1)

    def probe(
        self, fingerprint: MinHashFingerprint, stats: Optional[LSHQueryStats] = None
    ) -> List[Tuple[KeyT, float]]:
        """Candidates for an *external* fingerprint (not resident in the index).

        The serve-path query primitive: band-hash the probe, scan the same
        capped bucket windows a resident query would, and return
        ``(key, similarity)`` for every live member touched.  Read-only —
        the probe fingerprint is never inserted.
        """
        self._check_fingerprint(fingerprint)
        stats = stats if stats is not None else LSHQueryStats()
        with trace.span("lsh_query") as sp:
            self.queries += 1
            hashes = fingerprint.band_hashes(self.rows)[: self.bands].astype(np.int64)
            row_keys = ((np.arange(len(hashes), dtype=np.int64) << 32) | hashes).tolist()
            alive = self._alive
            cap = self.bucket_cap
            seen: Set[int] = set()
            candidates: List[int] = []
            for bucket_key in row_keys:
                stats.buckets_probed += 1
                members, total = self._bucket_members(bucket_key, cap)
                if cap is not None and total > cap:
                    stats.capped_buckets += 1
                    self.capped_bucket_hits += 1
                for row in members:
                    if row in seen or not alive[row]:
                        continue
                    seen.add(row)
                    candidates.append(row)
            stats.candidates_seen += len(candidates)
            stats.comparisons += len(candidates)
            sp.set(
                buckets_probed=len(row_keys),
                capped_buckets=stats.capped_buckets,
                candidates=len(candidates),
            )
            if not candidates:
                return []
            matrix = self._matrix()
            sims = (matrix[candidates] == fingerprint.values[None, :]).mean(axis=1)
            keys = self._keys
            return [(keys[row], float(s)) for row, s in zip(candidates, sims)]

    def best_match(
        self, key: KeyT, stats: Optional[LSHQueryStats] = None
    ) -> Optional[Tuple[KeyT, float]]:
        """The nearest live candidate by estimated Jaccard similarity."""
        stats = stats if stats is not None else LSHQueryStats()
        with trace.span("lsh_query") as sp:
            probed0, capped0 = stats.buckets_probed, stats.capped_buckets
            self.queries += 1
            me = self._row_of[key]
            candidates = self._candidate_rows(me, stats)
            stats.candidates_seen += len(candidates)
            stats.comparisons += len(candidates)
            sp.set(
                buckets_probed=stats.buckets_probed - probed0,
                capped_buckets=stats.capped_buckets - capped0,
                candidates=len(candidates),
            )
            if not candidates:
                return None
            sims = self._batch_similarity(me, candidates)
            best = int(sims.argmax())
            return self._keys[candidates[best]], float(sims[best])

    # -- diagnostics ------------------------------------------------------------------
    def index_stats(self) -> Dict[str, int]:
        """Structural and cumulative counters for the metrics registry:
        live vs stored rows (the difference is tombstones), removal and
        compaction counts, layer sizes, query traffic and cap pressure."""
        stored = len(self._keys)
        return {
            "rows": self.rows,
            "bands": self.bands,
            "bucket_cap": self.bucket_cap if self.bucket_cap is not None else -1,
            "live": self._live_count,
            "stored": stored,
            "tombstones": stored - self._live_count,
            "removals": self.removals,
            "compactions": self.compactions,
            "base_rows": self._base_count,
            "overflow_buckets": len(self._buckets),
            "queries": self.queries,
            "capped_bucket_hits": self.capped_bucket_hits,
        }

    def _live_bucket_populations(self) -> List[int]:
        """Live population of every bucket (both layers merged by key)."""
        by_key = self._base.live_populations(self._alive) if self._base is not None else {}
        for bucket_key, rows in self._buckets.items():
            live = sum(1 for row in rows if self._alive[row])
            by_key[bucket_key] = by_key.get(bucket_key, 0) + live
        return [p for p in by_key.values() if p > 0]

    def bucket_stats(self) -> BucketStats:
        populations = sorted(self._live_bucket_populations(), reverse=True)
        return BucketStats(
            total_buckets=len(populations),
            max_population=populations[0] if populations else 0,
            overpopulated=sum(1 for p in populations if p >= 128),
            populations=populations,
        )

    def bucket_summary(self) -> Dict[str, int]:
        """Scalar bucket-distribution gauges for the metrics registry.

        Same aggregates as :meth:`bucket_stats` but without materializing
        or sorting the populations list — cheap enough to sample per run.
        """
        pops = self._live_bucket_populations()
        return {
            "total_buckets": len(pops),
            "max_population": max(pops) if pops else 0,
            "overpopulated": sum(1 for p in pops if p >= 128),
        }
