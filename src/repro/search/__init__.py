"""Candidate search: exhaustive ranking (HyFM), LSH (F3M), adaptive policy."""

from .adaptive import (
    AdaptiveParameters,
    adaptive_bands,
    adaptive_parameters,
    adaptive_threshold,
    lsh_match_probability,
)
from .lsh import BucketStats, LSHIndex, LSHQueryStats
from .pairing import ExhaustiveRanker, Match, MinHashLSHRanker, Ranker, RankingStats

__all__ = [
    "AdaptiveParameters",
    "adaptive_bands",
    "adaptive_parameters",
    "adaptive_threshold",
    "lsh_match_probability",
    "BucketStats",
    "LSHIndex",
    "LSHQueryStats",
    "ExhaustiveRanker",
    "Match",
    "MinHashLSHRanker",
    "Ranker",
    "RankingStats",
]
