"""Candidate search: exhaustive ranking (HyFM), LSH (F3M), adaptive policy."""

from .adaptive import (
    AdaptiveParameters,
    adaptive_bands,
    adaptive_parameters,
    adaptive_threshold,
    lsh_match_probability,
)
from .lsh import BucketStats, ColumnarBuckets, LSHIndex, LSHQueryStats, band_bucket_keys
from .pairing import ExhaustiveRanker, Match, MinHashLSHRanker, Ranker, RankingStats
from .sharded import BandShard, ShardedLSHIndex, shard_ranges

__all__ = [
    "AdaptiveParameters",
    "adaptive_bands",
    "adaptive_parameters",
    "adaptive_threshold",
    "lsh_match_probability",
    "BucketStats",
    "ColumnarBuckets",
    "band_bucket_keys",
    "LSHIndex",
    "LSHQueryStats",
    "BandShard",
    "ShardedLSHIndex",
    "shard_ranges",
    "ExhaustiveRanker",
    "Match",
    "MinHashLSHRanker",
    "Ranker",
    "RankingStats",
]
