"""Candidate-pair selection strategies ("ranking" in the paper's terms).

Two interchangeable rankers drive the merging pass:

* :class:`ExhaustiveRanker` — HyFM's quadratic nearest-neighbour search over
  opcode-frequency fingerprints (the state of the art F3M improves on).
* :class:`MinHashLSHRanker` — F3M: MinHash fingerprints searched through a
  banded LSH index, in static (fixed k/r/b/t) or adaptive configuration.
  Preprocessing runs through the batched fingerprint engine
  (:func:`repro.fingerprint.batch.minhash_module`) by default, optionally
  backed by a content-addressed :class:`FingerprintCache` and a process
  pool; ``batched=False`` keeps the per-function reference path (used by
  the perf bench as the baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..fingerprint.batch import minhash_module, minhash_single
from ..fingerprint.cache import FingerprintCache
from ..fingerprint.encoding import EncodingOptions
from ..fingerprint.minhash import MinHashConfig, MinHashFingerprint, minhash_function
from ..fingerprint.opcode_freq import OpcodeFingerprint, fingerprint_function
from ..ir.function import Function
from ..obs import trace
from .adaptive import AdaptiveParameters, adaptive_parameters
from .lsh import LSHIndex, LSHQueryStats
from .sharded import ShardedLSHIndex

__all__ = [
    "Match",
    "RankingStats",
    "Ranker",
    "ExhaustiveRanker",
    "MinHashLSHRanker",
]

# ExhaustiveRanker compaction threshold, mirroring LSHIndex: rebuild when
# live rows drop below half of the stored rows (and the matrix is big
# enough for the rebuild to matter).
_COMPACT_MIN_ROWS = 64


@dataclass
class Match:
    """A proposed merge candidate for one query function."""

    function: Function
    similarity: float


@dataclass
class RankingStats:
    """Aggregate ranking work, for the stage-breakdown figures."""

    comparisons: int = 0
    queries: int = 0
    buckets_probed: int = 0
    capped_buckets: int = 0


class Ranker:
    """Interface shared by the pairing strategies."""

    #: human-readable strategy name used in reports
    name = "abstract"

    #: optional :class:`~repro.faults.FaultInjector`; the merging pass
    #: attaches its own so ranking-internal stages (``fingerprint``,
    #: ``lsh``) are injectable like the pipeline stages.
    faults = None

    def _fault_hit(self, stage: str) -> None:
        if self.faults is not None:
            self.faults.hit(stage)

    def preprocess(self, functions: List[Function]) -> None:
        raise NotImplementedError

    def insert(self, func: Function) -> None:
        """Add a function created after preprocessing (e.g. a merged
        function re-entering the candidate pool, paper Fig. 1)."""
        raise NotImplementedError

    def best_match(self, func: Function) -> Optional[Match]:
        raise NotImplementedError

    def remove(self, func: Function) -> None:
        raise NotImplementedError

    def similarity(self, a: Function, b: Function) -> float:
        """Fingerprint similarity of two preprocessed functions."""
        raise NotImplementedError

    @property
    def stats(self) -> RankingStats:
        raise NotImplementedError

    @property
    def preprocess_breakdown(self) -> Dict[str, float]:
        """Preprocessing time split by stage (fingerprint/index), when the
        ranker tracks it; the profiler falls back to the pass-level
        preprocess total otherwise."""
        return {}


class ExhaustiveRanker(Ranker):
    """HyFM ranking: compare each function against *all* other functions.

    The nearest neighbour under Manhattan distance of opcode-frequency
    vectors is the merge candidate.  O(n²) fingerprint comparisons — the
    scaling wall shown in the paper's Figure 3.

    Removal frees the per-function bookkeeping immediately and compacts
    the distance matrix when live rows drop below half of the stored rows,
    so long remerge runs do not scan (or retain) dead rows forever.
    """

    name = "hyfm"

    def __init__(self) -> None:
        self._fingerprints: Dict[int, OpcodeFingerprint] = {}
        self._functions: List[Optional[Function]] = []
        self._index_of: Dict[int, int] = {}
        self._matrix = None  # (n, dims) opcode-count matrix
        self._live = None  # boolean mask
        self._live_count = 0
        self._stats = RankingStats()

    def preprocess(self, functions: List[Function]) -> None:
        # One span for the whole build: the exhaustive path interleaves
        # fingerprinting and matrix growth, so there is no index split.
        with trace.span("fingerprint", functions=len(functions), ranker=self.name):
            for func in functions:
                self.insert(func)

    def insert(self, func: Function) -> None:
        fp = fingerprint_function(func)
        self._fingerprints[id(func)] = fp
        index = len(self._functions)
        self._functions.append(func)
        self._index_of[id(func)] = index
        dims = fp.counts.shape[0]
        if self._matrix is None:
            self._matrix = np.empty((256, dims), dtype=np.int64)
            self._live = np.zeros(256, dtype=bool)
        elif index >= self._matrix.shape[0]:
            grown = np.empty((self._matrix.shape[0] * 2, dims), dtype=np.int64)
            grown[:index] = self._matrix[:index]
            self._matrix = grown
            grown_live = np.zeros(self._matrix.shape[0], dtype=bool)
            grown_live[:index] = self._live[:index]
            self._live = grown_live
        self._matrix[index] = fp.counts
        self._live[index] = True
        self._live_count += 1

    def best_match(self, func: Function) -> Optional[Match]:
        self._stats.queries += 1
        self._fault_hit("fingerprint")
        n = len(self._functions)
        me = self._index_of[id(func)]
        mask = self._live[:n].copy()
        mask[me] = False
        count = int(mask.sum())
        if count == 0:
            return None
        self._stats.comparisons += count
        # Manhattan distance of the query row against every live row.
        matrix = self._matrix[:n]
        distances = np.abs(matrix[mask] - matrix[me]).sum(axis=1)
        live_indices = np.nonzero(mask)[0]
        best = self._functions[int(live_indices[int(distances.argmin())])]
        fp = self._fingerprints[id(func)]
        return Match(best, fp.similarity(self._fingerprints[id(best)]))

    def remove(self, func: Function) -> None:
        idx = self._index_of.pop(id(func), None)
        if idx is None or self._live is None:
            return
        if self._live[idx]:
            self._live[idx] = False
            self._live_count -= 1
        # Free the per-function entries immediately: dead rows must not pin
        # Function objects or fingerprints (id() reuse would then alias a
        # new function onto a stale entry).
        self._fingerprints.pop(id(func), None)
        self._functions[idx] = None
        if (
            len(self._functions) >= _COMPACT_MIN_ROWS
            and self._live_count * 2 < len(self._functions)
        ):
            self._compact()

    def _compact(self) -> None:
        n = len(self._functions)
        survivors = [i for i in range(n) if self._live[i]]
        self._functions = [self._functions[i] for i in survivors]
        self._index_of = {
            id(func): row for row, func in enumerate(self._functions)
        }
        keep = np.array(survivors, dtype=np.int64)
        m = keep.shape[0]
        if m:
            self._matrix[:m] = self._matrix[keep]
        self._live[:m] = True
        self._live[m:] = False

    def similarity(self, a: Function, b: Function) -> float:
        return self._fingerprints[id(a)].similarity(self._fingerprints[id(b)])

    @property
    def stats(self) -> RankingStats:
        return self._stats


class MinHashLSHRanker(Ranker):
    """F3M ranking: MinHash fingerprints + banded LSH search.

    ``adaptive=True`` derives (t, r, b) — and thus k — from the module's
    function count per Section III-D; otherwise the static defaults
    (k=200, r=2, b=100, t=0) apply unless overridden.

    ``batched`` (default) fingerprints the whole module through the
    vectorized batch engine and bulk-inserts into the LSH index; both are
    bit-identical to the per-function path, which stays available as the
    perf-bench baseline.  ``cache`` shares fingerprints content-addressed
    across runs and partitions; ``workers`` fans large modules out over a
    process pool; ``shards > 1`` swaps in the band-sharded index
    (:class:`~repro.search.sharded.ShardedLSHIndex`), whose results are
    identical to the serial index by construction.
    """

    name = "f3m"

    def __init__(
        self,
        config: Optional[MinHashConfig] = None,
        rows: int = 2,
        bands: Optional[int] = None,
        bucket_cap: Optional[int] = 100,
        threshold: float = 0.0,
        adaptive: bool = False,
        encoding: Optional[EncodingOptions] = None,
        batched: bool = True,
        cache: Optional[FingerprintCache] = None,
        workers: Optional[int] = None,
        shards: int = 1,
        compact_ratio: Optional[float] = 1.0,
    ) -> None:
        self._requested_config = config
        self.rows = rows
        self.bands = bands
        self.bucket_cap = bucket_cap
        self.threshold = threshold
        self.adaptive = adaptive
        self.encoding = encoding or EncodingOptions()
        self.batched = batched
        self.cache = cache
        self.workers = workers
        self.shards = shards
        self.compact_ratio = compact_ratio
        self.config: Optional[MinHashConfig] = None
        self.parameters: Optional[AdaptiveParameters] = None
        self._index: Optional[LSHIndex] = None
        self._functions: Dict[int, Function] = {}
        self._stats = RankingStats()
        self._breakdown: Dict[str, float] = {}
        if adaptive:
            self.name = "f3m-adaptive"

    def preprocess(self, functions: List[Function]) -> None:
        if self.adaptive:
            params = adaptive_parameters(len(functions), rows=self.rows)
            self.parameters = params
            self.threshold = params.threshold
            bands = params.bands
            k = params.fingerprint_size
            base = self._requested_config or MinHashConfig()
            self.config = MinHashConfig(
                k=k,
                shingle_size=base.shingle_size,
                seed=base.seed,
                independent_hashes=base.independent_hashes,
            )
        else:
            self.config = self._requested_config or MinHashConfig()
            bands = self.bands if self.bands is not None else self.config.k // self.rows
        if self.shards > 1:
            self._index = ShardedLSHIndex(
                rows=self.rows,
                bands=bands,
                bucket_cap=self.bucket_cap,
                shards=self.shards,
                compact_ratio=self.compact_ratio,
            )
        else:
            self._index = LSHIndex(
                rows=self.rows,
                bands=bands,
                bucket_cap=self.bucket_cap,
                compact_ratio=self.compact_ratio,
            )
        if not self.batched:
            with trace.span(
                "fingerprint", functions=len(functions), ranker=self.name
            ):
                for func in functions:
                    self.insert(func)
            return
        with trace.span("fingerprint", functions=len(functions), ranker=self.name):
            t0 = time.perf_counter()
            fingerprints = minhash_module(
                functions,
                self.config,
                self.encoding,
                cache=self.cache,
                workers=self.workers,
            )
            t1 = time.perf_counter()
        with trace.span("index", functions=len(functions)):
            self._index.insert_batch([id(f) for f in functions], fingerprints)
            for func in functions:
                self._functions[id(func)] = func
            t2 = time.perf_counter()
        self._breakdown = {"fingerprint": t1 - t0, "index": t2 - t1}

    def insert(self, func: Function) -> None:
        assert self._index is not None, "preprocess() must run first"
        if self.batched:
            fp = minhash_single(func, self.config, self.encoding, cache=self.cache)
        else:
            fp = minhash_function(func, self.config, self.encoding)
        self._index.insert(id(func), fp)
        self._functions[id(func)] = func

    def fingerprint(self, func: Function) -> MinHashFingerprint:
        assert self._index is not None
        return self._index.fingerprint(id(func))

    def best_match(self, func: Function) -> Optional[Match]:
        assert self._index is not None, "preprocess() must run first"
        qstats = LSHQueryStats()
        self._stats.queries += 1
        self._fault_hit("fingerprint")
        self._fault_hit("lsh")
        result = self._index.best_match(id(func), qstats)
        self._stats.comparisons += qstats.comparisons
        self._stats.buckets_probed += qstats.buckets_probed
        self._stats.capped_buckets += qstats.capped_buckets
        if result is None:
            return None
        other_id, similarity = result
        if similarity < self.threshold:
            return None
        return Match(self._functions[other_id], similarity)

    def remove(self, func: Function) -> None:
        if self._index is not None:
            self._index.remove(id(func))
        self._functions.pop(id(func), None)

    def similarity(self, a: Function, b: Function) -> float:
        assert self._index is not None
        return self._index.fingerprint(id(a)).similarity(self._index.fingerprint(id(b)))

    @property
    def stats(self) -> RankingStats:
        return self._stats

    @property
    def preprocess_breakdown(self) -> Dict[str, float]:
        return dict(self._breakdown)
