"""Adaptive parameter policy (paper Section III-D, Equations 3 and 4).

The similarity threshold rises with program size — small programs can afford
wasted merge attempts but not missed merges; huge programs need aggressive
filtering — and the band count is derived from the threshold so the LSH
search does not waste effort discovering pairs it would reject anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "adaptive_threshold",
    "adaptive_bands",
    "AdaptiveParameters",
    "adaptive_parameters",
    "lsh_match_probability",
]

# Below this function count the policy is fully conservative (t = 0.05,
# b = 100); the paper: "programs with fewer than 5000 functions do not
# benefit from aggressive similarity thresholds" and 10^3.5 ≈ 3162 is the
# formula's lower knee.
_SMALL_LOG10 = 3.5
_LARGE_LOG10 = 7.0
_SMALL_PROGRAM_FUNCTIONS = 5000


def adaptive_threshold(num_functions: int) -> float:
    """Equation 3: similarity threshold as a function of module size."""
    if num_functions <= 0:
        return 0.05
    x = math.log10(num_functions)
    if x < _SMALL_LOG10:
        return 0.05
    if x > _LARGE_LOG10:
        return 0.4
    return (x - 3.0) / 10.0


def adaptive_bands(threshold: float, num_functions: int) -> int:
    """Equation 4: bands needed for ≥90% discovery at similarity t + 0.1.

    ``b = ceil(log(0.1) / log(1 − (t + 0.1)^2))`` with r fixed at 2; small
    programs are pinned to b = 100 (the paper's static default).
    """
    if num_functions < _SMALL_PROGRAM_FUNCTIONS:
        return 100
    s = min(threshold + 0.1, 0.999)
    b = math.ceil(math.log(0.1) / math.log(1.0 - s * s))
    return max(1, min(100, b))


def lsh_match_probability(similarity: float, rows: int, bands: int) -> float:
    """Equation 2: probability two items share at least one band."""
    s = min(max(similarity, 0.0), 1.0)
    return 1.0 - (1.0 - s**rows) ** bands


@dataclass(frozen=True)
class AdaptiveParameters:
    """The full parameter bundle the adaptive variant runs with."""

    threshold: float
    rows: int
    bands: int

    @property
    def fingerprint_size(self) -> int:
        return self.rows * self.bands


def adaptive_parameters(num_functions: int, rows: int = 2) -> AdaptiveParameters:
    """Derive (t, r, b) — and with them k = r·b — for a module size.

    The adaptive policy "always uses r = 2 and controls k and b"
    (Section IV-D).
    """
    t = adaptive_threshold(num_functions)
    b = adaptive_bands(t, num_functions)
    return AdaptiveParameters(threshold=t, rows=rows, bands=b)
