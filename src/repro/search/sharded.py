"""Band-sharded LSH: the serial index partitioned over the ``bands`` axis.

Band hashes are independent of each other — bucket key ``(band, hash)``
only ever collides within its own band — so the bucket structures of a
banded LSH index partition cleanly into contiguous band ranges ("shards")
with **zero** cross-shard coordination.  :class:`ShardedLSHIndex` exploits
that two ways:

* **In-RAM mode** (constructor): a drop-in :class:`~repro.search.lsh.LSHIndex`
  subclass whose base/overflow bucket layers are split per band shard.
  Queries traverse shards in band order, so the candidate list — order
  included — is *exactly* the serial index's answer by construction (same
  candidate order ⇒ same ``best_match``, first-max tie-break included).
  This is the mode the property tests drive against the serial reference,
  including remove/compact interleavings.

* **Frozen store mode** (:meth:`ShardedLSHIndex.from_store`): shard bucket
  structures are built from a :class:`~repro.fingerprint.store.FingerprintStore`
  by worker processes — reusing the fork-pool + order-preserving ``map``
  pattern of :mod:`repro.merge.partitioned`, with ``workers=1`` running the
  identical worker inline — and written to ``.npy`` files that the parent
  (and query workers) re-open memory-mapped.  Neither the signature matrix
  nor the bucket arrays are ever RAM-resident as Python objects; the
  working set is page cache.  :meth:`ShardedLSHIndex.best_match_all` then
  answers every query vectorized (optionally fanning batches out to shard
  worker processes and unioning the candidate runs in shard order).

Exactness argument, spelled out once: the serial index probes bands
``0..b-1`` in order, applies the bucket cap *window* to each bucket's
member list, skips dead rows and already-seen rows, and takes the first
similarity argmax.  A shard owns a contiguous band range, shards are
traversed in ascending range order, and each shard probes its bands in
order — so the concatenation of per-shard probes is the identical global
band order, the same cap windows apply to the same buckets, and the
candidate sequence (and therefore every downstream decision) is identical.
The batched kernel deduplicates to first occurrences per query — exactly
the serial loop's ``seen`` set, vectorized — so its candidate list *is*
the serial candidate list (verified property-tested against the serial
loop).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..fingerprint.minhash import MinHashFingerprint
from ..fingerprint.store import FingerprintStore
from .lsh import (
    ColumnarBuckets,
    LSHIndex,
    LSHQueryStats,
    band_bucket_keys,
    build_columnar_buckets,
)

__all__ = ["BandShard", "ShardedLSHIndex", "shard_ranges"]


def shard_ranges(bands: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced band ranges covering ``[0, bands)`` in order."""
    shards = max(1, min(shards, bands))
    return [
        ((bands * i) // shards, (bands * (i + 1)) // shards) for i in range(shards)
    ]


class BandShard:
    """Bucket structures owned by one contiguous band range ``[lo, hi)``.

    ``base`` is the columnar layer (arrays may be RAM or memmapped .npy);
    ``overflow`` is the post-batch dict layer; ``bands`` is the shard's
    ``(n, width)`` bucket-key matrix in frozen store mode (in-RAM mode
    slices the index's own ``_bands_buf`` instead).
    """

    __slots__ = ("band_lo", "band_hi", "base", "overflow", "bands")

    def __init__(self, band_lo: int, band_hi: int) -> None:
        self.band_lo = band_lo
        self.band_hi = band_hi
        self.base: Optional[ColumnarBuckets] = None
        self.overflow: Dict[int, List[int]] = {}
        self.bands: Optional[np.ndarray] = None

    @property
    def width(self) -> int:
        return self.band_hi - self.band_lo

    def bucket_members(
        self, bucket_key: int, cap: Optional[int]
    ) -> Tuple[Sequence[int], int]:
        """Same contract as ``LSHIndex._bucket_members``, shard-local."""
        slc = self.base.slice_of(bucket_key) if self.base is not None else None
        base = self.base.members(*slc) if slc is not None else None
        overflow = self.overflow.get(bucket_key)
        if base is None:
            members: Sequence[int] = overflow if overflow is not None else ()
        elif overflow:
            members = base + overflow
        else:
            members = base
        total = len(members)
        if cap is not None and total > cap:
            return members[:cap], total
        return members, total


# ----------------------------------------------------------------------------------
# Frozen-mode worker functions.  Top-level and fed by picklable payloads so
# they run in a fork pool; ``workers=1`` calls them inline — the serial
# fallback executes the identical code path.

# Per-process memo of memmapped shard files, so a pool worker re-opens each
# shard once per process instead of once per query batch.
_SHARD_FILE_CACHE: Dict[str, Tuple[np.ndarray, ...]] = {}

# Byte budget per (rows, k) gather temporary in the batched kernel's eq
# slices; keeps peak kernel memory in the tens of MB even when a dense
# corpus floods a batch with millions of duplicate candidates.
_EQ_CHUNK_BYTES = 1 << 22

# Candidate-row budget per reduction: a batch whose shard runs exceed this
# is split into contiguous query groups so the O(total-candidates) scatter
# arrays stay bounded regardless of bucket density.
_REDUCE_BUDGET_ROWS = 1 << 20


def _shard_files(prefix: str) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    cached = _SHARD_FILE_CACHE.get(prefix)
    if cached is None:
        cached = tuple(
            np.load(prefix + suffix, mmap_mode="r")
            for suffix in (".bands.npy", ".rows.npy", ".keys.npy", ".starts.npy", ".ends.npy")
        )
        _SHARD_FILE_CACHE[prefix] = cached
    return cached


def _shard_build_worker(payload) -> str:
    """Build one shard's bucket keys + columnar layer and persist as .npy.

    The worker touches only a memmapped view of the store's signature
    matrix and its own band slice's arrays — peak RSS is bounded by the
    shard, not the corpus.
    """
    values_path, n, k, rows, bands, band_lo, band_hi, out_dir, chunk_rows = payload
    values = np.memmap(values_path, dtype=np.uint32, mode="r", shape=(n, k))
    width = band_hi - band_lo
    keys = np.empty((n, width), dtype=np.int64)
    for start in range(0, n, chunk_rows):
        stop = min(start + chunk_rows, n)
        keys[start:stop] = band_bucket_keys(
            values[start:stop], rows, bands, band_lo, band_hi
        )
    buckets = build_columnar_buckets(keys)
    prefix = os.path.join(out_dir, f"shard-{band_lo:04d}-{band_hi:04d}")
    np.save(prefix + ".bands.npy", keys)
    np.save(prefix + ".rows.npy", buckets.rows)
    np.save(prefix + ".keys.npy", buckets.sorted_keys)
    np.save(prefix + ".starts.npy", buckets.starts_flat)
    np.save(prefix + ".ends.npy", buckets.ends_flat)
    return prefix


def _segment_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices of the concatenation of ranges ``[starts[i], starts[i]+counts[i])``."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out_starts = np.cumsum(counts) - counts
    return (
        np.arange(total, dtype=np.int64)
        - np.repeat(out_starts, counts)
        + np.repeat(starts, counts)
    )


def _frozen_candidate_runs(
    starts_flat: np.ndarray,
    ends_flat: np.ndarray,
    member_rows: np.ndarray,
    width: int,
    queries: np.ndarray,
    cap: Optional[int],
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Capped candidate runs for a query batch against one frozen shard.

    Returns ``(cands, per_query_counts, capped_buckets)`` where *cands* is
    the concatenation, per query and then per band in order, of each
    probed bucket's first ``cap`` members — exactly the serial probe
    sequence for this band range, duplicates included.
    """
    # Plain-ndarray views of the (possibly memmapped) shard arrays: fancy
    # indexing through np.memmap.__getitem__ is orders of magnitude slower
    # than the base-class path, and the view shares the mapping (no copy).
    starts_flat = np.asarray(starts_flat)
    ends_flat = np.asarray(ends_flat)
    member_rows = np.asarray(member_rows)
    flat = (
        queries[:, None] * width + np.arange(width, dtype=np.int64)[None, :]
    ).ravel()
    starts = starts_flat[flat]
    counts = ends_flat[flat] - starts
    if cap is not None:
        capped = int(np.count_nonzero(counts > cap))
        counts = np.minimum(counts, cap)
    else:
        capped = 0
    cands = member_rows[_segment_gather(starts, counts)]
    per_query = counts.reshape(-1, width).sum(axis=1)
    return cands, per_query, capped


def _shard_query_worker(payload) -> Tuple[np.ndarray, np.ndarray, int]:
    prefix, width, cap, queries = payload
    _, member_rows, _, starts_flat, ends_flat = _shard_files(prefix)
    return _frozen_candidate_runs(starts_flat, ends_flat, member_rows, width, queries, cap)


# ----------------------------------------------------------------------------------


class _IdentityRows:
    """Minimal ``_row_of`` stand-in for frozen mode: key *is* the row.

    Avoids materializing a dict of 10^5–10^6 int->int entries just to map a
    row index to itself.
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def get(self, key, default=None):
        if isinstance(key, (int, np.integer)) and 0 <= key < self._n:
            return int(key)
        return default

    def __getitem__(self, key):
        row = self.get(key)
        if row is None:
            raise KeyError(key)
        return row

    def __contains__(self, key) -> bool:
        return self.get(key) is not None


class ShardedLSHIndex(LSHIndex):
    """Band-sharded LSH index; serial-identical results by construction."""

    def __init__(
        self,
        rows: int = 2,
        bands: int = 100,
        bucket_cap: Optional[int] = 100,
        shards: int = 2,
        compact_ratio: Optional[float] = 1.0,
    ) -> None:
        super().__init__(
            rows=rows, bands=bands, bucket_cap=bucket_cap, compact_ratio=compact_ratio
        )
        self._shards: List[BandShard] = [
            BandShard(lo, hi) for lo, hi in shard_ranges(bands, shards)
        ]
        # band index -> owning shard, for overflow-insert routing.
        self._shard_of_band: List[BandShard] = []
        for shard in self._shards:
            self._shard_of_band.extend([shard] * shard.width)
        self.shards = len(self._shards)
        self._frozen = False
        self._store: Optional[FingerprintStore] = None
        self._store_values: Optional[np.ndarray] = None
        self._shard_prefixes: Optional[List[str]] = None

    # -- frozen store mode -------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store: FingerprintStore,
        *,
        rows: int = 2,
        bands: Optional[int] = None,
        bucket_cap: Optional[int] = 100,
        shards: int = 1,
        workers: int = 1,
        shard_dir: Optional[str] = None,
        chunk_rows: int = 65536,
    ) -> "ShardedLSHIndex":
        """Build a frozen index over every row of *store*, sharded by band.

        Shard bucket structures are built by :func:`_shard_build_worker` —
        in a fork pool when ``workers > 1``, inline otherwise (identical
        code either way) — and persisted as ``.npy`` files under
        *shard_dir* (default: ``<store>/lsh-shards``), which the index then
        memory-maps.  Keys are the store row indices ``0..n-1``.  The
        index is frozen: ``insert``/``compact`` are unavailable, ``remove``
        tombstones without ever compacting.
        """
        k = store.config.k
        if bands is None:
            bands = k // rows
        if bands <= 0 or rows * bands > k:
            raise ValueError(f"rows*bands {rows}*{bands} does not fit k={k}")
        index = cls(rows=rows, bands=bands, bucket_cap=bucket_cap, shards=shards)
        n = len(store)
        values_path = os.path.join(store.directory, "values.u32")
        if shard_dir is None:
            shard_dir = os.path.join(store.directory, "lsh-shards")
        os.makedirs(shard_dir, exist_ok=True)
        payloads = [
            (values_path, n, k, rows, bands, shard.band_lo, shard.band_hi,
             shard_dir, chunk_rows)
            for shard in index._shards
        ]
        if workers > 1 and n:
            if sys.platform != "win32":
                ctx = multiprocessing.get_context("fork")
            else:  # pragma: no cover - windows fallback
                ctx = multiprocessing.get_context()
            with ProcessPoolExecutor(max_workers=min(workers, len(payloads)),
                                     mp_context=ctx) as pool:
                prefixes = list(pool.map(_shard_build_worker, payloads))
        else:
            prefixes = [_shard_build_worker(p) for p in payloads]
        for shard, prefix in zip(index._shards, prefixes):
            bands_mm, rows_mm, keys_mm, starts_mm, ends_mm = _shard_files(prefix)
            shard.bands = bands_mm
            shard.base = ColumnarBuckets(
                rows_mm, keys_mm, starts_mm, ends_mm, n, shard.width
            )
        index._frozen = True
        index._store = store
        index._store_values = store.values
        index._shard_prefixes = prefixes
        index._keys = range(n)  # type: ignore[assignment] — O(1) identity "list"
        index._row_of = _IdentityRows(n)  # type: ignore[assignment]
        index._fingerprints = None  # type: ignore[assignment]
        index._alive = np.ones(n, dtype=bool)  # type: ignore[assignment]
        index._live_count = n
        index._base_count = n
        return index

    # -- bucket-layer overrides --------------------------------------------------------
    def _build_base(self, bucket_keys: np.ndarray) -> None:
        n = bucket_keys.shape[0]
        for shard in self._shards:
            shard.base = build_columnar_buckets(
                bucket_keys[:, shard.band_lo : shard.band_hi]
            )
        self._base_count = n

    def _bucket_insert_row(self, row: int, row_keys: List[int]) -> None:
        for bucket_key in row_keys:
            overflow = self._shard_of_band[bucket_key >> 32].overflow
            bucket = overflow.get(bucket_key)
            if bucket is None:
                overflow[bucket_key] = [row]
            else:
                bucket.append(row)

    def _bucket_layers_empty(self) -> bool:
        return all(s.base is None and not s.overflow for s in self._shards)

    def _clear_buckets(self) -> None:
        for shard in self._shards:
            shard.base = None
            shard.overflow = {}
        self._base_count = 0

    def _bucket_members(
        self, bucket_key: int, cap: Optional[int]
    ) -> Tuple[Sequence[int], int]:
        return self._shard_of_band[bucket_key >> 32].bucket_members(bucket_key, cap)

    def _shard_row_keys(self, shard: BandShard, me: int) -> List[int]:
        if shard.bands is not None:
            return shard.bands[me].tolist()
        return self._bands_buf[me, shard.band_lo : shard.band_hi].tolist()

    def _candidate_rows(self, me: int, stats: LSHQueryStats) -> List[int]:
        # Shards hold contiguous band ranges and are traversed in range
        # order, so this loop probes buckets in exactly the serial index's
        # global band order — candidate order, cap windows, dedup and
        # alive-filtering all coincide with LSHIndex._candidate_rows.
        alive = self._alive
        cap = self.bucket_cap
        seen: Set[int] = {me}
        candidates: List[int] = []
        in_base = me < self._base_count
        for shard in self._shards:
            row_keys = self._shard_row_keys(shard, me)
            if in_base and shard.base is not None:
                bounds = shard.base.bounds_of_row(me)
            else:
                bounds = None
            for bucket_key in row_keys:
                stats.buckets_probed += 1
                if bounds is not None:
                    start, end = next(bounds)
                    base = shard.base.members(start, end)
                    overflow = shard.overflow.get(bucket_key)
                    members: Sequence[int] = base + overflow if overflow else base
                    total = len(members)
                    if cap is not None and total > cap:
                        members = members[:cap]
                        stats.capped_buckets += 1
                        self.capped_bucket_hits += 1
                else:
                    members, total = shard.bucket_members(bucket_key, cap)
                    if cap is not None and total > cap:
                        stats.capped_buckets += 1
                        self.capped_bucket_hits += 1
                for row in members:
                    if row in seen or not alive[row]:
                        continue
                    seen.add(row)
                    candidates.append(row)
        return candidates

    # -- snapshot clones ---------------------------------------------------------------
    def _clone_into(self, dup: "ShardedLSHIndex") -> None:
        if self._frozen:
            raise RuntimeError("clone is unavailable on a frozen store-backed index")
        super()._clone_into(dup)
        # Shards share their immutable columnar base layers; overflow dicts
        # (the only shard state a live index mutates) are copied.
        dup._shards = []
        for shard in self._shards:
            copied = BandShard(shard.band_lo, shard.band_hi)
            copied.base = shard.base
            copied.overflow = {key: list(rows) for key, rows in shard.overflow.items()}
            copied.bands = shard.bands
            dup._shards.append(copied)
        dup._shard_of_band = []
        for shard in dup._shards:
            dup._shard_of_band.extend([shard] * shard.width)
        dup.shards = self.shards
        dup._frozen = False
        dup._store = None
        dup._store_values = None
        dup._shard_prefixes = None

    # -- frozen-mode maintenance -------------------------------------------------------
    def _frozen_guard(self, op: str) -> None:
        if self._frozen:
            raise RuntimeError(f"{op} is unavailable on a frozen store-backed index")

    def insert(self, key, fingerprint) -> None:
        self._frozen_guard("insert")
        super().insert(key, fingerprint)

    def insert_batch(self, keys, fingerprints) -> None:
        self._frozen_guard("insert_batch")
        super().insert_batch(keys, fingerprints)

    def remove(self, key) -> None:
        if not self._frozen:
            super().remove(key)
            return
        # Frozen indexes tombstone but never compact: the bucket arrays are
        # shared read-only files, and rebuilding them belongs to a rebuild
        # of the store, not a query-time mutation.
        row = self._row_of.get(key)
        if row is not None and self._alive[row]:
            self._alive[row] = False
            self._live_count -= 1
            self.removals += 1

    def compact(self) -> None:
        self._frozen_guard("compact")
        super().compact()

    def fingerprint(self, key) -> MinHashFingerprint:
        if not self._frozen:
            return super().fingerprint(key)
        row = self._row_of[key]
        return MinHashFingerprint(
            np.array(self._store_values[row], dtype=np.uint32),
            self._store.config,
            int(self._store.num_shingles[row]),
        )

    def _matrix(self) -> np.ndarray:
        if self._store_values is not None:
            return self._store_values
        return super()._matrix()

    # -- batched queries ---------------------------------------------------------------
    def best_match_all(
        self,
        queries: Optional[np.ndarray] = None,
        *,
        batch_rows: int = 1024,
        workers: int = 1,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``best_match`` for every query row, vectorized (frozen mode only).

        Returns ``(best, sims)``: for query row ``i``, ``best[i]`` is the
        best live candidate row (``-1`` when the row has no candidates) and
        ``sims[i]`` its estimated Jaccard similarity.  Results are
        provably identical to calling :meth:`best_match` per row — the
        kernel concatenates each shard's capped bucket runs in band order,
        masks ``me``/dead rows order-preservingly, deduplicates to first
        occurrences per query (the serial loop's ``seen`` set, vectorized),
        and takes a first-occurrence argmax per query.

        ``workers > 1`` fans each batch out to one process per shard (fork
        pool, shard files re-opened memmapped per worker); ``workers=1``
        runs the identical per-shard kernel inline.
        """
        if not self._frozen:
            raise RuntimeError("best_match_all requires a from_store index")
        n = len(self._keys)
        if queries is None:
            queries = np.arange(n, dtype=np.int64)
        else:
            queries = np.asarray(queries, dtype=np.int64)
        # Base-class view: fancy-gathering rows through np.memmap.__getitem__
        # is drastically slower than the plain ndarray path (and the view
        # still reads through the mapping — nothing is copied up front).
        matrix = np.asarray(self._matrix())
        k = matrix.shape[1]
        alive = self._alive
        cap = self.bucket_cap
        best = np.full(queries.shape[0], -1, dtype=np.int64)
        sims = np.zeros(queries.shape[0], dtype=np.float64)
        self.queries += int(queries.shape[0])

        pool = None
        try:
            if workers > 1 and len(self._shards) > 1:
                ctx = (
                    multiprocessing.get_context("fork")
                    if sys.platform != "win32"
                    else multiprocessing.get_context()
                )
                pool = ProcessPoolExecutor(
                    max_workers=min(workers, len(self._shards)), mp_context=ctx
                )
            for lo in range(0, queries.shape[0], batch_rows):
                batch = queries[lo : lo + batch_rows]
                payloads = [
                    (prefix, shard.width, cap, batch)
                    for prefix, shard in zip(self._shard_prefixes, self._shards)
                ]
                if pool is not None:
                    runs = list(pool.map(_shard_query_worker, payloads))
                else:
                    runs = [_shard_query_worker(p) for p in payloads]
                b, s = self._reduce_batch(batch, runs, matrix, k, alive)
                best[lo : lo + batch.shape[0]] = b
                sims[lo : lo + batch.shape[0]] = s
        finally:
            if pool is not None:
                pool.shutdown()
        return best, sims

    def _reduce_batch(
        self,
        batch: np.ndarray,
        runs: List[Tuple[np.ndarray, np.ndarray, int]],
        matrix: np.ndarray,
        k: int,
        alive: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Union shard candidate runs in shard order and argmax per query."""
        nq = batch.shape[0]
        for _, _, capped in runs:
            self.capped_bucket_hits += capped
        totals = np.zeros(nq, dtype=np.int64)
        for _, per_query, _ in runs:
            totals += per_query
        grand = int(totals.sum())
        if grand == 0:
            return np.full(nq, -1, dtype=np.int64), np.zeros(nq, dtype=np.float64)
        if grand > _REDUCE_BUDGET_ROWS and nq > 1:
            # Dense corpus: split into contiguous query groups of bounded
            # candidate mass and reduce each group independently.  Queries
            # are independent of one another, so the split cannot change
            # any per-query answer.
            shard_offsets = [
                np.concatenate(([0], np.cumsum(per_query)))
                for _, per_query, _ in runs
            ]
            best = np.full(nq, -1, dtype=np.int64)
            sims = np.zeros(nq, dtype=np.float64)
            lo = 0
            while lo < nq:
                hi = lo + 1
                mass = int(totals[lo])
                while hi < nq and mass + int(totals[hi]) <= _REDUCE_BUDGET_ROWS:
                    mass += int(totals[hi])
                    hi += 1
                sub_runs = [
                    (cands_arr[offs[lo] : offs[hi]], per_query[lo:hi], 0)
                    for (cands_arr, per_query, _), offs in zip(runs, shard_offsets)
                ]
                b, s = self._reduce_batch(batch[lo:hi], sub_runs, matrix, k, alive)
                best[lo:hi] = b
                sims[lo:hi] = s
                lo = hi
            return best, sims
        # Scatter each shard's runs to their final per-query positions:
        # query-major, shard-minor — i.e. global band order.
        cands = np.empty(grand, dtype=np.int64)
        acc = np.cumsum(totals) - totals
        for shard_cands, per_query, _ in runs:
            dest = _segment_gather(acc, per_query)
            cands[dest] = shard_cands
            acc += per_query
        seg = np.repeat(np.arange(nq, dtype=np.int64), totals)
        keep = (cands != batch[seg]) & alive[cands]
        cands = cands[keep]
        seg = seg[keep]
        best = np.full(nq, -1, dtype=np.int64)
        sims = np.zeros(nq, dtype=np.float64)
        if cands.shape[0] == 0:
            return best, sims
        # First-occurrence dedup per query, vectorized — the serial loop's
        # ``seen`` set.  In dense corpora a family member recurs in nearly
        # every band, so this cuts the k-wide similarity work by up to a
        # factor of ``bands``.  Only later duplicates are dropped and they
        # carry the same eq value as their first occurrence, so the
        # first-max argmax below is untouched.
        pair_key = seg * np.int64(matrix.shape[0]) + cands
        _, first_occurrence = np.unique(pair_key, return_index=True)
        uniq = np.zeros(cands.shape[0], dtype=bool)
        uniq[first_occurrence] = True
        cands = cands[uniq]
        seg = seg[uniq]
        # Chunk the k-wide gathers: a dense batch can carry millions of
        # candidate rows (duplicates included), and materializing two
        # (m, k) gathers at once would cost gigabytes.  eq is computed in
        # bounded slices — same values, bounded temporaries.
        query_rows = batch[seg]
        m = cands.shape[0]
        eq = np.empty(m, dtype=np.int64)
        chunk_rows = max(1024, _EQ_CHUNK_BYTES // (k * matrix.itemsize))
        for c_lo in range(0, m, chunk_rows):
            c_hi = min(c_lo + chunk_rows, m)
            eq[c_lo:c_hi] = (
                matrix[cands[c_lo:c_hi]] == matrix[query_rows[c_lo:c_hi]]
            ).sum(axis=1)
        counts = np.bincount(seg, minlength=nq)
        nonempty = counts > 0
        seg_starts = (np.cumsum(counts) - counts)[nonempty]
        max_eq = np.maximum.reduceat(eq, seg_starts)
        max_of = np.zeros(nq, dtype=np.int64)
        max_of[nonempty] = max_eq
        pos = np.arange(eq.shape[0], dtype=np.int64)
        sentinel = eq.shape[0]
        first = np.minimum.reduceat(
            np.where(eq == max_of[seg], pos, sentinel), seg_starts
        )
        best[nonempty] = cands[first]
        sims[nonempty] = max_eq / float(k)
        return best, sims

    # -- diagnostics -------------------------------------------------------------------
    def index_stats(self) -> Dict[str, int]:
        stats = super().index_stats()
        stats["shards"] = self.shards
        stats["frozen"] = int(self._frozen)
        stats["overflow_buckets"] = sum(len(s.overflow) for s in self._shards)
        return stats

    def _live_bucket_populations(self) -> List[int]:
        # Band ranges are disjoint, so bucket keys never collide across
        # shards — per-shard merge of base+overflow is the global answer.
        pops: List[int] = []
        for shard in self._shards:
            by_key = (
                shard.base.live_populations(self._alive)
                if shard.base is not None
                else {}
            )
            for bucket_key, member_rows in shard.overflow.items():
                live = sum(1 for row in member_rows if self._alive[row])
                by_key[bucket_key] = by_key.get(bucket_key, 0) + live
            pops.extend(p for p in by_key.values() if p > 0)
        return pops
