"""Failure triage: canonical signatures and LSH-backed deduplication.

A raw failure dict (from :func:`repro.fuzz.verify.evaluate_candidate`)
is full of run-specific noise: register names, constants, candidate
indices.  :func:`canonical_tokens` strips all of it, leaving the stable
skeleton ``(stage, outcome, shape, normalized diagnostic words)``.  Two
failures are the same *bug* when their skeletons match — exactly, or
near-exactly under the MinHash similarity the merge pipeline itself
uses for functions.

Dedup is two-layered, same pattern as the pair ranker:

* an exact dict over the canonical key (the overwhelmingly common case:
  the same bug found again has a byte-identical skeleton);
* a banded :class:`~repro.search.lsh.LSHIndex` over MinHash
  fingerprints of the token stream, catching near-duplicates whose
  diagnostics differ only in drifting detail (block names, counts).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fingerprint.fnv import fnv1a_32
from ..fingerprint.minhash import MinHashConfig, MinHashFingerprint
from ..search.lsh import LSHIndex

__all__ = ["BugSignature", "TriageIndex", "canonical_tokens"]

# Near-duplicate threshold: failures whose token fingerprints agree on
# ≥90% of MinHash rows collapse into one bug.
_SIMILARITY = 0.90

_MINHASH = MinHashConfig(k=64, shingle_size=2)
_LSH_ROWS = 2
_LSH_BANDS = 32

# Noise patterns, replaced before tokenization: SSA names, numbers.
_REGISTER = re.compile(r"%[A-Za-z0-9._]+")
_FUNCTION = re.compile(r"@[A-Za-z0-9._]+")
_NUMBER = re.compile(r"\b\d+\b")


def canonical_tokens(failure: Dict[str, object]) -> Tuple[str, ...]:
    """The run-invariant skeleton of one failure dict."""
    detail = str(failure.get("detail") or "")
    detail = _REGISTER.sub("<reg>", detail)
    detail = _FUNCTION.sub("<fn>", detail)
    detail = _NUMBER.sub("<n>", detail)
    words = tuple(w for w in re.split(r"[^a-z<>:_-]+", detail.lower()) if w)
    return (
        str(failure.get("stage") or ""),
        str(failure.get("outcome") or ""),
        str(failure.get("shape") or ""),
    ) + words


def _fingerprint(tokens: Tuple[str, ...]) -> MinHashFingerprint:
    encoded = [fnv1a_32(token.encode("utf-8")) for token in tokens]
    return MinHashFingerprint.from_encoded(encoded, _MINHASH)


@dataclass
class BugSignature:
    """One deduplicated bug: identity plus everything needed to replay it."""

    bug_id: str
    stage: str
    outcome: str
    shape: str
    detail: str  # first-seen diagnostic, verbatim
    tokens: Tuple[str, ...]
    first_candidate: int
    family: str
    # The merge decisions behind the first sighting (minimized later by
    # the reducer — usually a single pair).
    decisions: List[List[str]] = field(default_factory=list)
    count: int = 1
    candidates: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "bug_id": self.bug_id,
            "stage": self.stage,
            "outcome": self.outcome,
            "shape": self.shape,
            "detail": self.detail,
            "tokens": list(self.tokens),
            "first_candidate": self.first_candidate,
            "family": self.family,
            "decisions": self.decisions,
            "count": self.count,
            "candidates": self.candidates,
        }


class TriageIndex:
    """Streaming dedup: feed failures, read back unique signatures."""

    def __init__(self) -> None:
        self._exact: Dict[Tuple[str, ...], BugSignature] = {}
        self._lsh: LSHIndex[str] = LSHIndex(
            rows=_LSH_ROWS, bands=_LSH_BANDS, bucket_cap=None
        )
        self._by_id: Dict[str, BugSignature] = {}
        self.total_failures = 0

    # -- feeding ---------------------------------------------------------------------
    def add(self, failure: Dict[str, object]) -> Tuple[BugSignature, bool]:
        """Record one failure; returns ``(signature, is_new_bug)``."""
        self.total_failures += 1
        tokens = canonical_tokens(failure)
        candidate = int(failure.get("candidate") or 0)

        signature = self._exact.get(tokens)
        if signature is None:
            signature = self._near_match(tokens)
        if signature is not None:
            signature.count += 1
            if candidate not in signature.candidates:
                signature.candidates.append(candidate)
            return signature, False

        bug_id = f"bug-{len(self._by_id) + 1:03d}"
        pair = failure.get("pair")
        signature = BugSignature(
            bug_id=bug_id,
            stage=str(failure.get("stage") or ""),
            outcome=str(failure.get("outcome") or ""),
            shape=str(failure.get("shape") or ""),
            detail=str(failure.get("detail") or ""),
            tokens=tokens,
            first_candidate=candidate,
            family=str(failure.get("family") or ""),
            decisions=[list(pair)] if pair else [],
            candidates=[candidate],
        )
        self._exact[tokens] = signature
        self._by_id[bug_id] = signature
        self._lsh.insert(bug_id, _fingerprint(tokens))
        return signature, True

    def _near_match(self, tokens: Tuple[str, ...]) -> Optional[BugSignature]:
        if not len(self._lsh):
            return None
        probe = "probe"
        self._lsh.insert(probe, _fingerprint(tokens))
        try:
            best_id, best_sim = None, 0.0
            for key, similarity in self._lsh.query(probe):
                if key != probe and similarity > best_sim:
                    best_id, best_sim = key, similarity
        finally:
            self._lsh.remove(probe)
        if best_id is not None and best_sim >= _SIMILARITY:
            return self._by_id[best_id]
        return None

    # -- reading ---------------------------------------------------------------------
    def signatures(self) -> List[BugSignature]:
        """Unique bugs in discovery order."""
        return list(self._by_id.values())

    @property
    def unique_bugs(self) -> int:
        return len(self._by_id)

    @property
    def dedup_rate(self) -> float:
        """Fraction of failures that were duplicates of a known bug."""
        if self.total_failures == 0:
            return 0.0
        return 1.0 - self.unique_bugs / self.total_failures
