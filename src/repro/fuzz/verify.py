"""Per-candidate evaluation: merge, then verify two independent ways.

One candidate's trip through the campaign:

1. **Generate** the module from ``(seed, index)``.
2. **Snapshot** each original function's observable behaviour on
   synthesized inputs (the same input machinery the differential oracle
   uses).
3. **Merge** with the pipeline under test (gates per config; the §III-E
   legacy bugs re-enabled when the campaign hunts them).
4. **Detect** failures three ways:

   * pipeline records — contained faults, rollbacks and gate vetoes
     straight from the :class:`~repro.merge.report.MergeReport`;
   * a **static scan** of every post-merge function for demote-reload
     shapes (:func:`repro.staticcheck.lint.demote_reload_diagnostics`)
     — this catches §III-E miscompiles even with every gate off,
     because committed originals keep their names as thunks;
   * a **differential re-run** of the step-2 snapshot: same function
     names, same inputs, post-merge module — any change in value/trap
     behaviour is a committed miscompile.

5. **Cross-check** the translation validator: every merge attempt runs
   with ``validate="observe"``, and a committed merge the validator
   ``proved`` that then shows a static demote shape or a behavioural
   divergence is reported as ``validator_false_proved`` — a soundness
   bug in the validator itself, distinct from the miscompile it missed.

Everything returned is a plain JSON-ready dict so the same function runs
identically inside a crash-isolated worker or in-process (unit tests,
``--replay``).

Failure *shape* precedence: when a candidate produces both a static
demote-reload shape and behavioural divergences, the divergences are
folded into the static failure as detail — they are two observations of
one bug, and triage must not count them twice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..faults import FAULT_STAGES, FaultInjector
from ..harness.experiments import make_ranker
from ..ir.function import Function
from ..ir.interp import FuelExhausted, InterpError, Interpreter, Trap
from ..ir.types import PointerType
from ..merge.pass_ import FunctionMergingPass, PassConfig
from ..obs.manifest import module_digest
from ..oracle.inputs import materialize, synthesize_inputs
from ..staticcheck.lint import demote_reload_diagnostics
from .config import FuzzConfig
from .generate import candidate_family, generate_candidate

__all__ = ["evaluate_candidate", "behavior_snapshot", "classify_diagnostic"]

#: Pipeline outcomes the campaign records as failures.
_FAILURE_OUTCOMES = {
    "static_fail",
    "validate_fail",
    "oracle_fail",
    "oracle_timeout",
    "internal_error",
    "rolled_back",
}


def classify_diagnostic(message: str) -> str:
    """Map a demote-reload diagnostic message onto its §III-E shape."""
    if "feeds a phi" in message:
        return "phi-reload"
    return "stale-reload"


# ---------------------------------------------------------------------------
# Behaviour snapshots
# ---------------------------------------------------------------------------


def _run_one(func: Function, specs, fuel: int) -> Optional[str]:
    """One execution, summarized as a stable string (or None = unjudgeable)."""
    interp = Interpreter(fuel=fuel)
    try:
        args = materialize(specs, interp)
        value = interp.run(func, args).value
        return f"value:{value!r}"
    except FuelExhausted:
        return "timeout"
    except Trap:
        return "trap"
    except (InterpError, RecursionError):
        return None


def behavior_snapshot(
    module, config: FuzzConfig, names: Optional[List[str]] = None
) -> Dict[str, List[Tuple[object, Optional[str]]]]:
    """``{function name: [(input vector, outcome), ...]}`` for *module*.

    Outcomes are printable strings (``value:…`` / ``trap`` / ``timeout``)
    so snapshots survive a JSON round-trip unchanged.
    """
    snapshot: Dict[str, List[Tuple[object, Optional[str]]]] = {}
    for func in module.defined_functions():
        if names is not None and func.name not in names:
            continue
        if isinstance(func.return_type, PointerType):
            # Raw addresses shift when merging adds allocas; the oracle
            # skips pointer-value comparison for the same reason.
            continue
        vectors = synthesize_inputs(
            func, config.inputs_per_function, seed=config.seed ^ 0xF77F
        )
        if vectors is None:
            continue
        runs = []
        for specs in vectors:
            runs.append((specs, _run_one(func, specs, config.fuel)))
        snapshot[func.name] = runs
    return snapshot


def _diff_snapshots(before, after) -> List[Dict[str, object]]:
    """Divergences between two snapshots of the same module's functions."""
    divergences = []
    for name, runs in before.items():
        for (specs, outcome), (_specs2, outcome2) in zip(runs, after.get(name, [])):
            if outcome is None or outcome2 is None:
                continue  # unjudgeable on at least one side
            if outcome != outcome2:
                kind = "timeout" if outcome2 == "timeout" else (
                    "trap" if "trap" in (outcome, outcome2) else "value"
                )
                divergences.append(
                    {
                        "function": name,
                        "inputs": repr(list(specs)),
                        "expected": outcome,
                        "actual": outcome2,
                        "kind": kind,
                    }
                )
    return divergences


# ---------------------------------------------------------------------------
# Merge-decision bookkeeping
# ---------------------------------------------------------------------------


def _merge_decisions(report) -> List[List[str]]:
    """The committed merges, in commit order: ``[[a, b], ...]``."""
    return [
        [att.function, att.candidate]
        for att in report.attempts
        if att.success and att.candidate is not None
    ]


def _pair_for(name: str, decisions: List[List[str]]) -> Optional[List[str]]:
    """The merge decision that consumed function *name*, if any."""
    for pair in decisions:
        if name in pair:
            return pair
    # Post-merge artifacts: "merged.a.b" names the pair itself.
    for pair in decisions:
        if name == f"merged.{pair[0]}.{pair[1]}":
            return pair
    return None


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------


def evaluate_candidate(config: FuzzConfig, index: int) -> Dict[str, object]:
    """Generate, merge and verify candidate *index*; returns a JSON-ready
    result dict.  Never raises for candidate-level problems — a candidate
    whose pipeline run blows up entirely is itself a ``failure``."""
    family = candidate_family(config.seed, index)
    base = {"index": index, "family": family}
    try:
        module = generate_candidate(config, index)
    except Exception as exc:  # generator bug: report, don't kill the campaign
        return dict(
            base,
            status="failure",
            merges=0,
            failures=[
                {
                    "candidate": index,
                    "family": family,
                    "stage": "generate",
                    "outcome": "generator_error",
                    "shape": f"generate:{type(exc).__name__}",
                    "detail": str(exc),
                    "function": None,
                    "pair": None,
                }
            ],
        )

    before = behavior_snapshot(module, config)

    faults = None
    if config.inject_fault:
        spec = config.inject_fault.split(":", 1)[0]
        if spec in FAULT_STAGES:
            faults = FaultInjector.parse(config.inject_fault)

    pass_config = PassConfig(
        legacy_bugs=config.legacy_bugs,
        oracle=config.oracle_gate,
        static_check=config.static_gate,
        # Third verifier: always observe (never gate) so the validator's
        # verdicts can be cross-checked against the other two detectors
        # without changing which merges commit.
        validate="observe",
    )
    pass_ = FunctionMergingPass(make_ranker(config.strategy), pass_config, faults=faults)
    report = pass_.run(module)
    decisions = _merge_decisions(report)

    # Validator verdict tallies plus the set of committed pairs the
    # validator claimed to have *proved* correct.
    validate_counts: Dict[str, int] = {}
    proved_pairs: Dict[Tuple[str, str], str] = {}
    for att in report.attempts:
        if att.validate_verdict is None:
            continue
        validate_counts[att.validate_verdict] = (
            validate_counts.get(att.validate_verdict, 0) + 1
        )
        if att.success and att.candidate and att.validate_verdict == "proved":
            proved_pairs[(att.function, att.candidate)] = att.validate_verdict

    failures: List[Dict[str, object]] = []

    # 1. Pipeline-level records: contained faults and gate vetoes.
    for att in report.attempts:
        outcome = str(att.outcome)
        if outcome not in _FAILURE_OUTCOMES:
            continue
        failures.append(
            {
                "candidate": index,
                "family": family,
                "stage": (att.error or "unknown").split(":", 1)[0],
                "outcome": outcome,
                "shape": outcome,
                "detail": att.error or "",
                "function": att.function,
                "pair": [att.function, att.candidate] if att.candidate else None,
            }
        )

    # 2. Post-hoc static scan of every surviving function.
    static_failures: List[Dict[str, object]] = []
    for func in module.defined_functions():
        for diag in demote_reload_diagnostics(func):
            static_failures.append(
                {
                    "candidate": index,
                    "family": family,
                    "stage": "codegen",
                    "outcome": "miscompile_static",
                    "shape": classify_diagnostic(diag.message),
                    "detail": diag.message,
                    "function": func.name,
                    "pair": _pair_for(func.name, decisions),
                }
            )

    # 3. Post-hoc differential re-run of the pre-merge snapshot.
    after = behavior_snapshot(module, config, names=list(before))
    divergences = _diff_snapshots(before, after)

    if static_failures:
        # Shape precedence: behavioural divergence on a candidate that has
        # a static §III-E shape is the same bug observed twice.
        if divergences:
            for failure in static_failures:
                failure["detail"] += f" [+{len(divergences)} behavioural divergence(s)]"
        failures.extend(static_failures)
    else:
        for div in divergences:
            failures.append(
                {
                    "candidate": index,
                    "family": family,
                    "stage": "oracle",
                    "outcome": "miscompile_diff",
                    "shape": f"{div['kind']}-divergence",
                    "detail": (
                        f"@{div['function']} on {div['inputs']}: "
                        f"{div['expected']} -> {div['actual']}"
                    ),
                    "function": div["function"],
                    "pair": _pair_for(div["function"], decisions),
                }
            )

    # 4. Validator cross-check: a committed merge the validator *proved*
    # must never be caught by the static scan or the differential re-run.
    # One such sighting is a one-sided-soundness violation in the
    # validator, which triages separately from the miscompile it missed.
    if proved_pairs:
        flagged_pairs: set = set()
        for failure in list(failures):
            pair = failure.get("pair")
            if not pair or tuple(pair) not in proved_pairs:
                continue
            if failure["outcome"] not in ("miscompile_static", "miscompile_diff"):
                continue
            if tuple(pair) in flagged_pairs:
                continue
            flagged_pairs.add(tuple(pair))
            failures.append(
                {
                    "candidate": index,
                    "family": family,
                    "stage": "validate",
                    "outcome": "validator_false_proved",
                    "shape": "validator-false-proved",
                    "detail": (
                        f"validator proved merge {pair[0]},{pair[1]} but "
                        f"{failure['outcome']} was observed: {failure['detail']}"
                    ),
                    "function": failure["function"],
                    "pair": pair,
                }
            )

    return dict(
        base,
        status="failure" if failures else "ok",
        merges=report.merges,
        attempts=len(report.attempts),
        outcomes={k: v for k, v in report.outcome_counts().items() if v},
        validate=validate_counts,
        decisions=decisions,
        module_digest=module_digest(module),
        failures=failures,
    )
