"""Continuous differential-fuzzing campaign engine.

``repro fuzz`` drives four cooperating layers, each usable on its own:

* :mod:`~repro.fuzz.generate` — deterministic candidate modules from
  ``(seed, index)``, biased toward the §III-E danger shapes;
* :mod:`~repro.fuzz.verify` — per-candidate merge + static scan +
  differential re-run, returning plain JSON-ready dicts;
* :mod:`~repro.fuzz.worker` — crash-isolated subprocess pool with
  retry-once-then-quarantine fault policy;
* :mod:`~repro.fuzz.triage` / :mod:`~repro.fuzz.reduce` — LSH-backed
  bug deduplication and delta-debugging minimization.

:func:`~repro.fuzz.campaign.run_campaign` ties them together and emits
a byte-reproducible :class:`~repro.obs.manifest.RunManifest`.
"""

from .campaign import CampaignResult, build_fuzz_manifest, replay_campaign, run_campaign
from .config import SEMANTIC_FIELDS, FuzzConfig
from .generate import FAMILIES, candidate_family, candidate_seed, generate_candidate
from .reduce import module_instruction_count, reduce_module, replay_shapes
from .triage import BugSignature, TriageIndex, canonical_tokens
from .verify import behavior_snapshot, classify_diagnostic, evaluate_candidate
from .worker import WorkerPool, run_pool

__all__ = [
    "CampaignResult",
    "build_fuzz_manifest",
    "replay_campaign",
    "run_campaign",
    "SEMANTIC_FIELDS",
    "FuzzConfig",
    "FAMILIES",
    "candidate_family",
    "candidate_seed",
    "generate_candidate",
    "module_instruction_count",
    "reduce_module",
    "replay_shapes",
    "BugSignature",
    "TriageIndex",
    "canonical_tokens",
    "behavior_snapshot",
    "classify_diagnostic",
    "evaluate_candidate",
    "WorkerPool",
    "run_pool",
]
