"""Crash-isolated evaluation workers.

The campaign must survive anything a candidate does to the process
evaluating it — a segfault-equivalent (``os._exit`` deep inside native
code), an unbounded loop the interpreter's fuel doesn't cover, an OOM
kill.  So evaluation runs in subprocess workers speaking a JSON-line
protocol::

    parent -> worker:  {"config": {semantic fields...}, "index": 17}\\n
    worker -> parent:  {result of evaluate_candidate(...)}\\n

Requests are stateless (each line carries the full semantic config), so
a replacement worker needs no handshake: kill, respawn, resend.

Fault policy, per candidate:

* **crash or hang** (no reply line / deadline passed) → kill the worker,
  respawn, retry the candidate exactly once;
* **second failure** → the candidate is *quarantined*: recorded with
  status ``quarantined`` and skipped, the campaign continues.  A
  quarantined candidate never changes any other candidate's result —
  generation is a pure function of ``(seed, index)``.

Deterministic fault injection for tests rides the same config:
``inject_fault="worker_crash:N"`` makes the worker hard-exit *inside*
candidate ``N``'s evaluation; ``worker_hang:N`` makes it sleep past any
deadline.  Both fire by candidate index, so the quarantine path is
reproducible run to run.

If subprocess spawning itself fails (restricted environments), the pool
degrades gracefully to in-process evaluation — no isolation, same
results.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from queue import Empty, Queue
from typing import Dict, List, Optional

from ..faults import WORKER_FAULT_STAGES
from .config import FuzzConfig
from .generate import candidate_family
from .verify import evaluate_candidate

__all__ = ["WorkerPool", "run_pool", "worker_main"]

_CRASH_EXIT = 23  # distinctive status for injected crashes


def _parse_worker_fault(spec: Optional[str]):
    """``("worker_crash", 3)`` from ``"worker_crash:3"`` — else ``None``."""
    if not spec:
        return None
    stage, _, num = spec.partition(":")
    if stage not in WORKER_FAULT_STAGES:
        return None
    try:
        return stage, int(num)
    except ValueError:
        return stage, 0


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def worker_main(stdin=None, stdout=None) -> None:
    """Serve evaluation requests until stdin closes (one JSON line each)."""
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    for line in stdin:
        line = line.strip()
        if not line:
            continue
        request = json.loads(line)
        config = FuzzConfig.from_dict(request["config"])
        index = int(request["index"])

        fault = _parse_worker_fault(config.inject_fault)
        if fault is not None and fault[1] == index:
            if fault[0] == "worker_crash":
                os._exit(_CRASH_EXIT)
            time.sleep(3600)  # worker_hang: blow any sane deadline

        result = evaluate_candidate(config, index)
        stdout.write(json.dumps(result) + "\n")
        stdout.flush()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _Worker:
    """One subprocess plus the bookkeeping to kill and replace it."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.proc: Optional[subprocess.Popen] = None

    def start(self) -> None:
        src_root = str(Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.fuzz.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )

    def request(self, config: FuzzConfig, index: int, timeout: float) -> Optional[Dict]:
        """One request/reply round; ``None`` means the worker died or hung."""
        proc = self.proc
        if proc is None or proc.poll() is not None:
            return None
        try:
            proc.stdin.write(
                json.dumps({"config": config.semantic_dict(), "index": index}) + "\n"
            )
            proc.stdin.flush()
        except (BrokenPipeError, OSError):
            return None
        reply: List[Optional[str]] = [None]

        def _read():
            try:
                reply[0] = proc.stdout.readline()
            except (ValueError, OSError):
                pass

        reader = threading.Thread(target=_read, daemon=True)
        reader.start()
        reader.join(timeout)
        if reader.is_alive() or not reply[0]:
            return None  # hang (reader stuck) or crash (EOF)
        try:
            return json.loads(reply[0])
        except json.JSONDecodeError:
            return None

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self.proc = None

    def restart(self) -> None:
        self.kill()
        self.start()


class WorkerPool:
    """Fan candidate indices out to crash-isolated workers.

    Results come back as ``{index: result dict}``; quarantined candidates
    get a synthetic ``{"status": "quarantined", ...}`` entry so the
    manifest records them explicitly rather than silently dropping them.
    """

    def __init__(self, config: FuzzConfig):
        self.config = config
        self.results: Dict[int, Dict] = {}
        self.quarantined: List[int] = []
        self._lock = threading.Lock()

    # -- in-process fallback -----------------------------------------------------------
    def _run_inline(self, indices: List[int]) -> None:
        for index in indices:
            self.results[index] = evaluate_candidate(self.config, index)

    # -- subprocess path ---------------------------------------------------------------
    def _drain(self, worker: _Worker, queue: "Queue[int]") -> None:
        while True:
            try:
                index = queue.get_nowait()
            except Empty:
                return
            result = worker.request(self.config, index, self.config.timeout)
            if result is None:
                # First failure: replace the worker, retry once.
                worker.restart()
                result = worker.request(self.config, index, self.config.timeout)
            if result is None:
                worker.restart()
                with self._lock:
                    self.quarantined.append(index)
                    self.results[index] = {
                        "index": index,
                        "family": candidate_family(self.config.seed, index),
                        "status": "quarantined",
                        "merges": 0,
                        "failures": [],
                    }
            else:
                with self._lock:
                    self.results[index] = result

    def run(self, indices: List[int]) -> Dict[int, Dict]:
        """Evaluate every index; returns ``{index: result}`` (complete)."""
        if self.config.workers <= 0:
            self._run_inline(indices)
            return self.results

        workers = []
        try:
            for i in range(min(self.config.workers, max(1, len(indices)))):
                worker = _Worker(i)
                worker.start()
                workers.append(worker)
        except (OSError, ValueError):
            for worker in workers:
                worker.kill()
            self._run_inline(indices)  # degraded: no isolation, same results
            return self.results

        queue: "Queue[int]" = Queue()
        for index in indices:
            queue.put(index)
        threads = [
            threading.Thread(target=self._drain, args=(w, queue), daemon=True)
            for w in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for worker in workers:
            worker.kill()
        return self.results


def run_pool(config: FuzzConfig, indices: List[int]) -> WorkerPool:
    """Convenience wrapper: build, run, return the finished pool."""
    pool = WorkerPool(config)
    pool.run(indices)
    return pool


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    worker_main()
