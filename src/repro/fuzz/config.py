"""Campaign configuration.

One :class:`FuzzConfig` fully determines a campaign's *results*: every
candidate module, every merge decision inside it and every detector
verdict derive from ``(seed, budget)`` plus the semantic knobs below.
Operational knobs (worker count, per-candidate timeout) only change how
fast the same answers arrive, so :meth:`FuzzConfig.semantic_dict` —
what goes into the run manifest — deliberately excludes them: two runs
of the same campaign on different machines produce byte-identical
manifests.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["FuzzConfig", "SEMANTIC_FIELDS"]

#: Config fields that can change campaign *results* (and therefore belong
#: in the manifest).  Everything else is operational.
SEMANTIC_FIELDS = (
    "budget",
    "seed",
    "strategy",
    "legacy_bugs",
    "oracle_gate",
    "static_gate",
    "danger_bias",
    "fuel",
    "inputs_per_function",
    "inject_fault",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Everything one fuzzing campaign needs.

    ``budget``/``seed`` identify the campaign; candidate ``i`` of a
    campaign is a pure function of ``(seed, i)`` (see
    :func:`repro.fuzz.generate.candidate_seed`).

    ``legacy_bugs`` re-enables the §III-E codegen bugs inside the merge
    pipeline under test.  ``oracle_gate``/``static_gate`` toggle the
    pipeline's own defenses; a campaign with both off relies entirely on
    the post-hoc detectors (the configuration that rediscovers the
    legacy bugs as committed miscompiles).

    ``inject_fault`` takes the same ``stage[:N]`` spec as ``repro merge
    --inject-fault`` and additionally accepts the campaign-level stages
    ``worker_crash``/``worker_hang`` (see :mod:`repro.faults`), where
    ``N`` names the candidate index whose worker dies.
    """

    budget: int = 100
    seed: int = 0
    strategy: str = "hyfm"
    legacy_bugs: bool = False
    oracle_gate: bool = True
    static_gate: bool = True
    danger_bias: float = 0.5
    fuel: int = 50_000
    inputs_per_function: int = 4
    inject_fault: Optional[str] = None
    # Operational (never in the manifest).
    workers: int = 2
    timeout: float = 30.0
    out_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process)")
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")

    def semantic_dict(self) -> Dict[str, object]:
        """The result-determining subset, for manifests and worker hand-off."""
        full = dataclasses.asdict(self)
        return {name: full[name] for name in SEMANTIC_FIELDS}

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FuzzConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})
