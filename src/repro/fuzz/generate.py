"""Deterministic candidate-module generation.

Candidate ``i`` of a campaign is a pure function of ``(seed, i)``:
:func:`candidate_seed` mixes the two into a per-candidate seed, a
``random.Random`` over that seed picks one of the :data:`FAMILIES` and
every structural choice inside it.  Re-running any candidate — in a
worker, in the reducer, in ``--replay`` — regenerates the exact same
module, so results never need to ship module text across the process
boundary.

Families
--------

``twins``
    A :class:`~repro.workloads.generator.FunctionGenerator` population
    plus mutation-derived variants, biased toward the §III-E danger
    shapes (invokes feeding phis, fresh diamonds, address-taken
    function pointers) via :func:`~repro.workloads.mutate.make_danger_variant`.
``diamond``
    A pair sharing a long tail where one side's diamond join defines
    phis consumed both *inside* the join block and in the shared tail —
    the shape that forces the merger to demote a **phi** (§III-E bug 1
    territory).
``invoke``
    A pair where one side's invoke result feeds a single-incoming phi
    in its private normal destination *and* is consumed again in the
    shared tail — the shape that forces the merger to demote an
    **invoke** (§III-E bug 2 territory).
``frontend``
    MiniC sources fused from randomized snippets, compiled and
    mem2reg-promoted, then cloned into mutated variants.
``mixed``
    Generator filler plus one diamond or invoke pair.
"""

from __future__ import annotations

import random
from typing import List

from ..frontend import compile_source
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.verifier import verify_module
from ..transforms.mem2reg import promote_module
from ..workloads.generator import FunctionGenerator, GeneratorConfig
from ..workloads.mutate import make_danger_variant, make_variant
from .config import FuzzConfig

__all__ = ["FAMILIES", "candidate_seed", "candidate_family", "generate_candidate"]

FAMILIES = ("twins", "diamond", "invoke", "frontend", "mixed")

# splitmix64-style finalizer: decorrelates (seed, index) pairs so campaign
# seeds 0..k give unrelated candidate streams.
_MASK = (1 << 64) - 1


def candidate_seed(seed: int, index: int) -> int:
    """Stable per-candidate seed for candidate *index* of campaign *seed*."""
    z = (seed * 0x9E3779B97F4A7C15 + index * 0xBF58476D1CE4E5B9 + 0x94D049BB133111EB) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


def candidate_family(seed: int, index: int) -> str:
    """Which family candidate *index* belongs to (cheap, no module built)."""
    return FAMILIES[candidate_seed(seed, index) % len(FAMILIES)]


# ---------------------------------------------------------------------------
# Shared text fragments
# ---------------------------------------------------------------------------

_PAD_OPS = ("add", "xor", "mul", "sub")


def _pad(rng: random.Random, n: int, seed_reg: str) -> str:
    """A straight-line tail of *n* int ops ending in ``ret`` — the shared
    region that makes the bug pairs profitable to merge."""
    lines: List[str] = []
    prev = seed_reg
    for i in range(n):
        op = rng.choice(_PAD_OPS)
        lines.append(f"  %t{i} = {op} i32 {prev}, {rng.randint(1, 99)}")
        prev = f"%t{i}"
    lines.append(f"  %fin = add i32 {prev}, 1")
    lines.append("  ret i32 %fin")
    return "\n".join(lines)


def _diamond_pair(rng: random.Random) -> str:
    """Bug-1 territory: ``d1``'s join phis are used in the join block
    (``%u = mul %p, %q``) *and* in the tail shared with ``d2``.  Merged,
    the join is ``d1``-private, the tail shared, so ``%p`` — a phi with a
    same-block use — violates dominance and gets demoted."""
    ka, kb = rng.randint(1, 50), rng.randint(51, 99)
    qa, qb = rng.randint(1, 9), rng.randint(10, 19)
    ky, kz = rng.randint(1, 50), rng.randint(2, 9)
    pad = _pad(rng, rng.randint(18, 26), "%r")
    return f"""
define i32 @d1(i32 %x, i1 %c) {{
entry:
  br i1 %c, label %a, label %b
a:
  %va = add i32 %x, {ka}
  br label %join
b:
  %vb = add i32 %x, {kb}
  br label %join
join:
  %p = phi i32 [ %va, %a ], [ %vb, %b ]
  %q = phi i32 [ {qa}, %a ], [ {qb}, %b ]
  %u = mul i32 %p, %q
  br label %tail
tail:
  %r = add i32 %p, %u
{pad}
}}
define i32 @d2(i32 %x, i1 %c) {{
entry:
  %y = add i32 %x, {ky}
  %z = mul i32 %y, {kz}
  br label %tail
tail:
  %r = add i32 %y, %z
{pad}
}}
"""


def _invoke_pair(rng: random.Random) -> str:
    """Bug-2 territory: ``v1``'s invoke result feeds the single-incoming
    phi of its private normal destination *and* the shared tail.  Merged,
    the invoke is demoted; the only legal load point for the phi use is
    in the invoke's own block, before the invoke itself."""
    kc = rng.randint(1, 99)
    km = rng.randint(2, 9)
    ky = rng.randint(1, 99)
    pad = _pad(rng, rng.randint(18, 26), "%r")
    return f"""
define i32 @vcallee(i32 %x) {{
entry:
  %r = add i32 %x, {kc}
  ret i32 %r
}}
define i32 @v1(i32 %x) {{
entry:
  %inv = invoke i32 @vcallee(i32 %x) to label %mid unwind label %vpad
vpad:
  unreachable
mid:
  %p = phi i32 [ %inv, %entry ]
  %m = mul i32 %p, {km}
  br label %tail
tail:
  %r = add i32 %inv, %m
{pad}
}}
define i32 @v2(i32 %x) {{
entry:
  %y = sub i32 %x, {ky}
  br label %tail
tail:
  %r = add i32 %y, %y
{pad}
}}
"""


_MINIC_SNIPPETS = (
    "int {name}(int a, int b) {{ int s = a {op} b; while (s > {k}) {{ s = s - b; }} return s; }}",
    "int {name}(int a, int b) {{ if (a < b) {{ return a {op} {k}; }} return b {op} a; }}",
    "int {name}(int a, int b) {{ int i = 0; int acc = a; while (i < {k2}) {{ acc = acc {op} b; i = i + 1; }} return acc; }}",
    "int {name}(int a, int b) {{ int m = a; if (b > {k}) {{ m = m {op} b; }} else {{ m = m - {k2}; }} return m {op} 3; }}",
)


def _frontend_sources(rng: random.Random, count: int) -> str:
    """Fuse *count* randomized MiniC functions into one source string."""
    parts = []
    for i in range(count):
        template = rng.choice(_MINIC_SNIPPETS)
        parts.append(
            template.format(
                name=f"mc{i}",
                op=rng.choice(("+", "-", "*")),
                k=rng.randint(1, 30),
                k2=rng.randint(2, 8),
            )
        )
    return "\n".join(parts)


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------


def _gen_population(module: Module, rng: random.Random, count: int) -> List:
    config = GeneratorConfig(max_ops=rng.randint(8, 16), max_depth=2)
    generator = FunctionGenerator(module, rng, config)
    return [generator.generate(f"g{i}") for i in range(count)]


def _family_twins(rng: random.Random, danger_bias: float) -> Module:
    module = Module("fuzz.twins")
    bases = _gen_population(module, rng, rng.randint(2, 4))
    for i, base in enumerate(bases):
        if rng.random() < 0.5:
            make_danger_variant(
                base, f"{base.name}.dv{i}", rng, rng.randint(1, 3),
                module=module, danger_bias=danger_bias,
            )
        else:
            make_variant(base, f"{base.name}.v{i}", rng, rng.randint(1, 3), module=module)
    return module


def _family_diamond(rng: random.Random, danger_bias: float) -> Module:
    module = parse_module(_diamond_pair(rng), name="fuzz.diamond")
    _gen_population(module, rng, rng.randint(1, 2))
    return module


def _family_invoke(rng: random.Random, danger_bias: float) -> Module:
    module = parse_module(_invoke_pair(rng), name="fuzz.invoke")
    _gen_population(module, rng, rng.randint(1, 2))
    return module


def _family_frontend(rng: random.Random, danger_bias: float) -> Module:
    source = _frontend_sources(rng, rng.randint(2, 4))
    module = compile_source(source, module_name="fuzz.frontend")
    promote_module(module)
    for func in list(module.defined_functions()):
        if rng.random() < 0.6:
            make_danger_variant(
                func, f"{func.name}.dv", rng, rng.randint(1, 2),
                module=module, danger_bias=danger_bias,
            )
    return module


def _family_mixed(rng: random.Random, danger_bias: float) -> Module:
    text = _diamond_pair(rng) if rng.random() < 0.5 else _invoke_pair(rng)
    module = parse_module(text, name="fuzz.mixed")
    bases = _gen_population(module, rng, rng.randint(1, 2))
    for base in bases:
        make_danger_variant(
            base, f"{base.name}.dv", rng, rng.randint(1, 2),
            module=module, danger_bias=danger_bias,
        )
    return module


_BUILDERS = {
    "twins": _family_twins,
    "diamond": _family_diamond,
    "invoke": _family_invoke,
    "frontend": _family_frontend,
    "mixed": _family_mixed,
}


def generate_candidate(config: FuzzConfig, index: int) -> Module:
    """Build candidate *index* of the campaign — deterministic, verified."""
    cseed = candidate_seed(config.seed, index)
    family = FAMILIES[cseed % len(FAMILIES)]
    rng = random.Random(cseed)
    module = _BUILDERS[family](rng, config.danger_bias)
    for func in module.defined_functions():
        func.uniquify_names()
    verify_module(module)
    return module
