"""Campaign orchestration: the ``repro fuzz`` engine.

A campaign is a pure function of its semantic config.  ``budget``
candidate indices fan out over the crash-isolated
:class:`~repro.fuzz.worker.WorkerPool`; results are re-ordered by index
before triage, so worker scheduling can never change what the campaign
reports.  Every failure streams through the
:class:`~repro.fuzz.triage.TriageIndex`; each *unique* bug is then
minimized by :func:`~repro.fuzz.reduce.reduce_module` into a replayable
reproducer — one ``.ir`` module plus the exact ``repro fuzz --check``
command that re-triggers it.

The manifest (``--manifest``) uses the observability layer's
:class:`~repro.obs.manifest.RunManifest` with ``kind="fuzz"``.  It
contains only semantic facts — config, per-bug signatures, aggregate
outcome counts, a content digest over every candidate module — and
pins ``created_unix``/``total_time`` to ``0.0``, so two runs of the
same ``(seed, budget)`` produce **byte-identical** files.  Wall-clock
numbers live in the benchmark JSON, not the manifest.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..ir.printer import print_module
from ..obs.manifest import RunManifest, git_revision, save_manifest
from .config import FuzzConfig
from .generate import generate_candidate
from .reduce import reduce_module
from .triage import BugSignature, TriageIndex
from .worker import WorkerPool

__all__ = ["CampaignResult", "run_campaign", "build_fuzz_manifest", "replay_campaign"]


@dataclass
class CampaignResult:
    """Everything one campaign produced, in deterministic order."""

    config: FuzzConfig
    results: List[Dict[str, object]]  # by candidate index
    triage: TriageIndex
    reductions: Dict[str, Dict[str, object]]  # bug_id -> reduce_module output
    quarantined: List[int]
    manifest: RunManifest

    @property
    def signatures(self) -> List[BugSignature]:
        return self.triage.signatures()

    def reproducer_command(self, signature: BugSignature, ir_path: str) -> str:
        """The CLI line that replays *signature* from its reproducer file."""
        pair = signature.decisions[0] if signature.decisions else None
        parts = ["repro", "fuzz", "--check", ir_path]
        if pair:
            parts.append(f"--pair {pair[0]},{pair[1]}")
        parts.append(f"--shape {signature.shape}")
        if self.config.legacy_bugs:
            parts.append("--legacy-bugs")
        return " ".join(parts)


# ---------------------------------------------------------------------------
# Pieces
# ---------------------------------------------------------------------------


def _combined_digest(results: List[Dict[str, object]]) -> str:
    """One digest over every candidate module this campaign touched."""
    h = hashlib.sha256()
    for result in results:
        digest = result.get("module_digest")
        if digest:
            h.update(f"{result['index']}:{digest}\n".encode("ascii"))
    return h.hexdigest()


def _minimize(config: FuzzConfig, signature: BugSignature) -> Dict[str, object]:
    """Reduce the first sighting of *signature* to a minimal reproducer."""
    module = generate_candidate(config, signature.first_candidate)
    text = print_module(module)
    if not signature.decisions:
        # No recorded pair to replay (e.g. a generator error): keep the
        # whole candidate as evidence, unreduced.
        return {
            "text": text,
            "instructions": sum(f.num_instructions for f in module.defined_functions()),
            "reproduced": False,
        }
    return reduce_module(
        text, signature.decisions[0], config.legacy_bugs, signature.shape
    )


def build_fuzz_manifest(
    config: FuzzConfig,
    results: List[Dict[str, object]],
    triage: TriageIndex,
    reductions: Dict[str, Dict[str, object]],
    quarantined: List[int],
) -> RunManifest:
    """Deterministic manifest: semantic config and findings only."""
    outcomes: Dict[str, int] = {}
    merges = 0
    for result in results:
        merges += int(result.get("merges") or 0)
        for key, value in (result.get("outcomes") or {}).items():
            outcomes[key] = outcomes.get(key, 0) + int(value)
        outcomes[f"candidate_{result['status']}"] = (
            outcomes.get(f"candidate_{result['status']}", 0) + 1
        )
    signatures = []
    for signature in triage.signatures():
        payload = signature.to_dict()
        reduction = reductions.get(signature.bug_id)
        if reduction is not None:
            payload["minimized_instructions"] = reduction["instructions"]
            payload["minimized"] = reduction["reproduced"]
        signatures.append(payload)
    failing = sorted(
        {f["candidate"] for r in results for f in (r.get("failures") or [])}
    )
    return RunManifest(
        kind="fuzz",
        strategy=config.strategy,
        config=config.semantic_dict(),
        seed=config.seed,
        git_rev=git_revision(),
        created_unix=0.0,  # pinned: manifests must be byte-reproducible
        module_name=f"fuzz-campaign-{config.budget}",
        module_digest=_combined_digest(results),
        functions=len(results),
        merges=merges,
        total_time=0.0,  # timings belong in BENCH_fuzz.json, not here
        outcomes=dict(sorted(outcomes.items())),
        metrics={
            "unique_bugs": triage.unique_bugs,
            "total_failures": triage.total_failures,
            "dedup_rate": round(triage.dedup_rate, 6),
            "quarantined": sorted(quarantined),
            "failing_candidates": failing,
            "signatures": signatures,
        },
    )


def _write_reproducers(
    out_dir: str, campaign: "CampaignResult"
) -> List[str]:
    """One ``.ir`` + one ``.cmd`` per bug, plus ``signatures.json``."""
    root = Path(out_dir)
    root.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    for signature in campaign.signatures:
        reduction = campaign.reductions.get(signature.bug_id)
        if reduction is None:
            continue
        ir_path = root / f"{signature.bug_id}.ir"
        ir_path.write_text(str(reduction["text"]))
        command = campaign.reproducer_command(signature, str(ir_path))
        (root / f"{signature.bug_id}.cmd").write_text(command + "\n")
        written.append(str(ir_path))
    index = [
        dict(
            s.to_dict(),
            minimized_instructions=campaign.reductions[s.bug_id]["instructions"],
        )
        for s in campaign.signatures
        if s.bug_id in campaign.reductions
    ]
    (root / "signatures.json").write_text(
        json.dumps(index, indent=2, sort_keys=True) + "\n"
    )
    return written


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def run_campaign(
    config: FuzzConfig,
    manifest_path: Optional[str] = None,
    minimize: bool = True,
) -> CampaignResult:
    """Run one full campaign; optionally save the manifest and reproducers."""
    indices = list(range(config.budget))
    pool = WorkerPool(config)
    pool.run(indices)
    results = [pool.results[i] for i in sorted(pool.results)]

    triage = TriageIndex()
    for result in results:
        for failure in result.get("failures") or []:
            triage.add(failure)

    reductions: Dict[str, Dict[str, object]] = {}
    if minimize:
        for signature in triage.signatures():
            reductions[signature.bug_id] = _minimize(config, signature)

    manifest = build_fuzz_manifest(
        config, results, triage, reductions, pool.quarantined
    )
    campaign = CampaignResult(
        config=config,
        results=results,
        triage=triage,
        reductions=reductions,
        quarantined=pool.quarantined,
        manifest=manifest,
    )
    if config.out_dir:
        _write_reproducers(config.out_dir, campaign)
    if manifest_path:
        save_manifest(manifest, manifest_path)
    return campaign


def replay_campaign(manifest: RunManifest) -> Dict[str, object]:
    """Re-run a recorded campaign's failing candidates and re-triage.

    Candidates are regenerated from the manifest's semantic config (in
    process — replay is about reproducing findings, not stress-testing
    isolation) and their failures deduplicated afresh.  The verdict
    compares the new signature set against the recorded one.
    """
    config = FuzzConfig.from_dict(dict(manifest.config))
    recorded = {
        (s["stage"], s["outcome"], s["shape"])
        for s in manifest.metrics.get("signatures", [])
    }
    indices = [int(i) for i in manifest.metrics.get("failing_candidates", [])]

    triage = TriageIndex()
    results = []
    from .verify import evaluate_candidate

    for index in indices:
        result = evaluate_candidate(config, index)
        results.append(result)
        for failure in result.get("failures") or []:
            triage.add(failure)
    replayed = {(s.stage, s.outcome, s.shape) for s in triage.signatures()}
    return {
        "candidates": len(indices),
        "recorded_signatures": sorted(recorded),
        "replayed_signatures": sorted(replayed),
        "missing": sorted(recorded - replayed),
        "new": sorted(replayed - recorded),
        "reproduced": recorded <= replayed,
    }
