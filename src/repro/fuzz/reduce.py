"""Delta-debugging reduction: shrink a failing candidate to its essence.

The reducer works on the *candidate module text* and a recorded merge
decision (the pair of functions whose merge exhibited the bug).  Its
predicate replays that one merge directly through
:func:`~repro.merge.merger.merge_functions` — deliberately bypassing the
pass's profitability gate, which exists to reject *small* merges: a
minimal reproducer is precisely a merge too small to ever be committed
in production, but the codegen bug it tickles is the same.

Two reduction loops run to fixpoint:

1. **Function drop** — delete every defined function not (transitively)
   referenced by the pair.
2. **Instruction deletion** — walk each surviving function's
   instructions last-to-first; replace each candidate instruction's
   uses with a same-typed operand (or ``undef``) and delete it.  A trial
   is kept only when the module still parses, verifies, and the replay
   predicate still produces the target bug shape.

Every trial round-trips through the printer/parser, so the final
reproducer is guaranteed to be a loadable ``.ir`` file whose replay
command (``repro fuzz --check FILE --pair A,B [--legacy-bugs]``)
reproduces the signature.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..alignment import align_functions
from ..ir.instructions import Instruction
from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module
from ..ir.values import UndefValue
from ..ir.verifier import verify_module
from ..merge.merger import MergeOptions, merge_functions
from ..oracle.differential import DifferentialOracle, OracleConfig
from ..staticcheck.lint import demote_reload_diagnostics
from .verify import classify_diagnostic

__all__ = ["replay_shapes", "reduce_module", "module_instruction_count"]


def module_instruction_count(module: Module) -> int:
    return sum(f.num_instructions for f in module.defined_functions())


# ---------------------------------------------------------------------------
# Replay predicate
# ---------------------------------------------------------------------------


def replay_shapes(
    module: Module, pair: List[str], legacy_bugs: bool, differential: bool = True
) -> List[str]:
    """Replay one pair merge; returns every bug shape it exhibits.

    Static demote-reload shapes come from the merged function; when
    *differential* is set, oracle divergence kinds (``value-divergence``
    etc.) are appended for signatures found behaviourally.
    """
    f1 = module.get_function(pair[0])
    f2 = module.get_function(pair[1])
    if f1 is None or f2 is None or f1.is_declaration or f2.is_declaration:
        return []
    try:
        alignment = align_functions(f1, f2)
        result = merge_functions(
            alignment, module, options=MergeOptions(legacy_bugs=legacy_bugs)
        )
    except Exception:
        return []
    shapes = [
        classify_diagnostic(d.message) for d in demote_reload_diagnostics(result.merged)
    ]
    if differential:
        try:
            verdict = DifferentialOracle(OracleConfig(inputs_per_function=3)).check(result)
            shapes.extend(f"{d.kind}-divergence" for d in verdict.divergences)
        except Exception:
            pass
    return shapes


def _predicate(text: str, pair: List[str], legacy_bugs: bool, shape: str) -> bool:
    """Does *text* still reproduce *shape* when the pair is merged?"""
    try:
        module = parse_module(text)
        verify_module(module)
    except Exception:
        return False
    return shape in replay_shapes(module, pair, legacy_bugs)


# ---------------------------------------------------------------------------
# Reduction passes
# ---------------------------------------------------------------------------


def _drop_functions(text: str, pair: List[str], legacy_bugs: bool, shape: str) -> str:
    """Remove defined functions one at a time while the bug survives."""
    module = parse_module(text)
    names = [
        f.name for f in module.defined_functions() if f.name not in pair
    ]
    for name in names:
        module = parse_module(text)
        func = module.get_function(name)
        if func is None or func.num_uses != 0:
            continue  # referenced (e.g. a callee): deletion can't parse
        module.remove_function(func)
        trial = print_module(module)
        if _predicate(trial, pair, legacy_bugs, shape):
            text = trial
    return text


def _deletable(inst: Instruction) -> bool:
    return not inst.is_terminator


def _replacement(inst: Instruction):
    """A stand-in value for *inst*'s uses: a same-typed operand, else undef."""
    for op in inst.operands:
        if not isinstance(op, Instruction) and getattr(op, "type", None) is inst.type:
            return op
    for op in inst.operands:
        if getattr(op, "type", None) is inst.type:
            return op
    return UndefValue(inst.type)


def _delete_one(text: str, func_name: str, position: int) -> Optional[str]:
    """Trial text with instruction *position* of *func_name* deleted."""
    module = parse_module(text)
    func = module.get_function(func_name)
    if func is None:
        return None
    flat: List[Instruction] = [
        inst for block in func.blocks for inst in block.instructions
    ]
    if position >= len(flat):
        return None
    inst = flat[position]
    if not _deletable(inst):
        return None
    if inst.num_uses:
        inst.replace_all_uses_with(_replacement(inst))
    block = inst.parent
    if block is None:
        return None
    block.remove(inst)
    return print_module(module)


def _shrink_function(
    text: str, func_name: str, pair: List[str], legacy_bugs: bool, shape: str
) -> str:
    """Reverse-order instruction deletion over one function, to fixpoint."""
    changed = True
    while changed:
        changed = False
        module = parse_module(text)
        func = module.get_function(func_name)
        if func is None:
            return text
        count = sum(len(b.instructions) for b in func.blocks)
        for position in reversed(range(count)):
            trial = _delete_one(text, func_name, position)
            if trial is None:
                continue
            if _predicate(trial, pair, legacy_bugs, shape):
                text = trial
                changed = True
                # Positions shifted: restart this function's sweep.
                break
    return text


def reduce_module(
    text: str,
    pair: List[str],
    legacy_bugs: bool,
    shape: str,
    max_rounds: int = 8,
) -> Dict[str, object]:
    """Shrink *text* while ``merge(pair)`` still exhibits *shape*.

    Returns ``{"text", "instructions", "reproduced"}`` — when the input
    doesn't reproduce at all, it is returned unchanged with
    ``reproduced=False`` (callers keep the unreduced module as evidence).
    """
    if not _predicate(text, pair, legacy_bugs, shape):
        module = parse_module(text)
        return {
            "text": text,
            "instructions": module_instruction_count(module),
            "reproduced": False,
        }
    for _round in range(max_rounds):
        before = text
        text = _drop_functions(text, pair, legacy_bugs, shape)
        module = parse_module(text)
        for func in module.defined_functions():
            text = _shrink_function(text, func.name, pair, legacy_bugs, shape)
        if text == before:
            break
    module = parse_module(text)
    return {
        "text": text,
        "instructions": module_instruction_count(module),
        "reproduced": True,
    }
