"""F3M: Fast Focused Function Merging (CGO 2022) — reproduction.

The package is organised like the paper's system:

* :mod:`repro.ir` — a self-contained, LLVM-shaped SSA IR (the substrate).
* :mod:`repro.analysis` — CFG, dominators, linearization, code-size model.
* :mod:`repro.fingerprint` — opcode-frequency (HyFM) and MinHash (F3M)
  function fingerprints plus the 32-bit instruction encoding.
* :mod:`repro.search` — exhaustive nearest-neighbour ranking, the banded
  LSH index with bucket cap, and the adaptive parameter policy.
* :mod:`repro.alignment` — block pairing and linear/Needleman–Wunsch
  alignment of candidate pairs.
* :mod:`repro.merge` — merged-function codegen, SSA repair (including the
  Section III-E bug fixes), profitability and the full merging pass.
* :mod:`repro.workloads` — deterministic synthetic benchmark suites.
* :mod:`repro.harness` — experiment drivers for every table and figure.

Quickstart::

    from repro.workloads import build_workload
    from repro.merge import FunctionMergingPass, PassConfig
    from repro.search import MinHashLSHRanker

    module = build_workload(500, "demo")
    report = FunctionMergingPass(MinHashLSHRanker(adaptive=True)).run(module)
    print(report.summary())
"""

from .merge import FunctionMergingPass, MergeReport, PassConfig
from .search import ExhaustiveRanker, MinHashLSHRanker

__version__ = "1.0.0"

__all__ = [
    "FunctionMergingPass",
    "MergeReport",
    "PassConfig",
    "ExhaustiveRanker",
    "MinHashLSHRanker",
    "__version__",
]
