"""HyFM-style block-level alignment.

HyFM "works on the basic block level, reducing the granularity of the inputs
for the alignment algorithm" and "employs a simpler linear alignment
strategy" (paper Section V).  We reproduce both steps:

1. **Block pairing** — blocks of the two functions are paired greedily by
   opcode-frequency fingerprint distance (most similar blocks first).
2. **Within-pair alignment** — either the linear strategy (match the common
   mergeable prefix and suffix; everything in between is split) or full
   Needleman–Wunsch for the quality-over-speed configuration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis.linearizer import linearize_blocks
from ..fingerprint.opcode_freq import OpcodeFingerprint, fingerprint_block
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Instruction
from .model import BlockAlignment, FunctionAlignment, SharedSegment, SplitSegment, mergeable
from .needleman_wunsch import needleman_wunsch

__all__ = [
    "align_blocks_linear",
    "align_blocks_nw",
    "align_functions",
    "BlockFingerprintMemo",
]


class BlockFingerprintMemo:
    """Per-block :func:`fingerprint_block` memo for greedy block pairing.

    One function participates in many attempts before it is consumed (every
    time the ranker proposes it, and once per remerge round), and block
    fingerprints only depend on the block's instructions.  The memo keeps a
    strong reference to each block, so a block object can never be
    garbage-collected and have its ``id`` reused while an entry is live;
    callers invalidate blocks whose instructions were mutated in place
    (committed merges rewrite call sites inside caller blocks).
    """

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[BasicBlock, OpcodeFingerprint]] = {}
        # id(function) -> (function, ids of its memoized blocks).  Recorded at
        # memoization time, so invalidation also reaches blocks the function
        # no longer owns (a thunked original drops its old body).
        self._by_func: Dict[int, Tuple[Function, set]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, block: BasicBlock) -> OpcodeFingerprint:
        entry = self._entries.get(id(block))
        if entry is not None:
            return entry[1]
        fp = fingerprint_block(block)
        self._entries[id(block)] = (block, fp)
        func = block.parent
        if func is not None:
            owned = self._by_func.get(id(func))
            if owned is None:
                self._by_func[id(func)] = (func, {id(block)})
            else:
                owned[1].add(id(block))
        return fp

    def invalidate_block(self, block: BasicBlock) -> None:
        self._entries.pop(id(block), None)

    def invalidate_function(self, func: Function) -> None:
        owned = self._by_func.pop(id(func), None)
        if owned is not None:
            for bid in owned[1]:
                self._entries.pop(bid, None)

    def clear(self) -> None:
        self._entries.clear()
        self._by_func.clear()


def _body(block: BasicBlock) -> List[Instruction]:
    """Alignable instructions: everything but phis and the terminator."""
    insts = block.instructions
    start = block.first_non_phi_index()
    end = len(insts) - 1 if block.is_terminated else len(insts)
    return insts[start:end]


def align_blocks_linear(block_a: BasicBlock, block_b: BasicBlock) -> BlockAlignment:
    """Linear (O(n+m)) alignment: shared prefix + shared suffix + split middle."""
    seq_a, seq_b = _body(block_a), _body(block_b)
    n, m = len(seq_a), len(seq_b)
    limit = min(n, m)
    prefix = 0
    while prefix < limit and mergeable(seq_a[prefix], seq_b[prefix]):
        prefix += 1
    suffix = 0
    while (
        suffix < limit - prefix
        and mergeable(seq_a[n - 1 - suffix], seq_b[m - 1 - suffix])
    ):
        suffix += 1

    alignment = BlockAlignment(block_a, block_b)
    if prefix:
        alignment.segments.append(
            SharedSegment(list(zip(seq_a[:prefix], seq_b[:prefix])))
        )
    mid_a = seq_a[prefix : n - suffix]
    mid_b = seq_b[prefix : m - suffix]
    if mid_a or mid_b:
        alignment.segments.append(SplitSegment(mid_a, mid_b))
    if suffix:
        alignment.segments.append(
            SharedSegment(list(zip(seq_a[n - suffix :], seq_b[m - suffix :])))
        )
    return alignment


def align_blocks_nw(block_a: BasicBlock, block_b: BasicBlock) -> BlockAlignment:
    """Needleman–Wunsch alignment of a block pair (SalSSA-quality)."""
    entries = needleman_wunsch(_body(block_a), _body(block_b), mergeable)
    alignment = BlockAlignment(block_a, block_b)
    shared: List[Tuple[Instruction, Instruction]] = []
    left: List[Instruction] = []
    right: List[Instruction] = []

    def flush_split() -> None:
        nonlocal left, right
        if left or right:
            alignment.segments.append(SplitSegment(left, right))
            left, right = [], []

    def flush_shared() -> None:
        nonlocal shared
        if shared:
            alignment.segments.append(SharedSegment(shared))
            shared = []

    for a, b in entries:
        if a is not None and b is not None:
            flush_split()
            shared.append((a, b))
        else:
            flush_shared()
            if a is not None:
                left.append(a)
            if b is not None:
                right.append(b)
    flush_split()
    flush_shared()
    return alignment


def align_functions(
    func_a: Function,
    func_b: Function,
    strategy: str = "linear",
    min_block_similarity: float = 0.0,
    fp_memo: Optional[BlockFingerprintMemo] = None,
) -> FunctionAlignment:
    """Pair up blocks of two functions and align each pair.

    Blocks are paired greedily: every (a, b) candidate is scored by
    fingerprint similarity, and the best-scoring compatible pairs win.
    Blocks whose best partner shares nothing stay unmatched and will be
    copied into the merged function guarded by the function id.

    ``fp_memo`` shares block fingerprints across calls, so a function that
    is scored against many candidates fingerprints its blocks once.
    """
    if strategy not in ("linear", "nw"):
        raise ValueError(f"unknown alignment strategy {strategy!r}")
    align_pair = align_blocks_linear if strategy == "linear" else align_blocks_nw

    blocks_a = linearize_blocks(func_a)
    blocks_b = linearize_blocks(func_b)
    if fp_memo is not None:
        fps_a = [fp_memo.get(b) for b in blocks_a]
        fps_b = [fp_memo.get(b) for b in blocks_b]
    else:
        fps_a = [fingerprint_block(b) for b in blocks_a]
        fps_b = [fingerprint_block(b) for b in blocks_b]

    scored: List[Tuple[float, int, int]] = []
    for i, fa in enumerate(fps_a):
        for j, fb in enumerate(fps_b):
            sim = fa.similarity(fb)
            if sim >= min_block_similarity:
                scored.append((sim, i, j))
    # Highest similarity first; ties broken by block order for determinism.
    scored.sort(key=lambda t: (-t[0], t[1], t[2]))

    result = FunctionAlignment(func_a, func_b)
    used_a = [False] * len(blocks_a)
    used_b = [False] * len(blocks_b)
    for _sim, i, j in scored:
        if used_a[i] or used_b[j]:
            continue
        alignment = align_pair(blocks_a[i], blocks_b[j])
        # Entry blocks must pair with each other (the merged entry dispatch
        # needs a single entry); skip cross pairings involving an entry.
        if (i == 0) != (j == 0):
            continue
        used_a[i] = used_b[j] = True
        result.block_pairs.append(alignment)
    result.unmatched_a = [b for b, used in zip(blocks_a, used_a) if not used]
    result.unmatched_b = [b for b, used in zip(blocks_b, used_b) if not used]
    # Stable order: by position of the A-side block.
    index_a = {id(b): i for i, b in enumerate(blocks_a)}
    result.block_pairs.sort(key=lambda p: index_a[id(p.block_a)])
    return result
