"""Vectorized attempt-stage alignment over encoded instruction streams.

The pure aligner (:mod:`~repro.alignment.hyfm_blocks`) calls
:func:`~repro.alignment.model.mergeable` per DP cell — a Python predicate
over opcodes, types and operand lists, quadratic per block pair.  This
module moves the whole attempt-stage hot path onto integer codes:

* :class:`InstructionInterner` assigns every instruction a dense integer
  *mergeability code* such that code equality is **exactly**
  ``mergeable(a, b)``.  This works because ``mergeable`` is an equivalence
  relation on non-phi, non-terminator instructions: it only tests the
  opcode, identity of the result/operand types, the comparison predicate
  and the alloca allocated type — all per-instruction attributes, interned
  here into one key.  (The 32-bit *fingerprint* encoding of
  :mod:`~repro.fingerprint.encoding` deliberately blurs predicates and
  type identity, so it cannot be reused for alignment decisions.)
* :func:`nw_ops_encoded` runs Needleman–Wunsch over two code streams with
  numpy row-wise DP — the left-gap dependency inside a row is resolved by
  a prefix-scan (``np.maximum.accumulate``) — plus an optional banded mode
  for near-diagonal alignments; :func:`linear_ops_encoded` is HyFM's
  prefix/suffix strategy as three array comparisons.  Both return an
  *ops array* (``int8``: match / gap-A / gap-B) whose decisions are
  bit-identical to the pure-Python aligners (property-tested).
* :class:`BatchAlignmentEngine` memoizes per-block encodings and
  opcode-frequency fingerprints, scores all block pairs of a candidate
  function pair in one vectorized similarity matrix, replays the pure
  greedy pairing order exactly, and shares decisions through a
  content-addressed :class:`~repro.alignment.cache.AlignmentCache`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.linearizer import linearize_blocks
from ..fingerprint.fnv import fnv1a_32_ints
from ..fingerprint.opcode_freq import _DIM, _INDEX
from ..ir.basicblock import BasicBlock
from ..ir.function import Function
from ..ir.instructions import Alloca, FCmp, ICmp, Instruction
from ..obs import trace
from .cache import _KEY_SALT, AlignmentCache, BlockKey, PlanCache, block_key
from .hyfm_blocks import _body
from .model import BlockAlignment, FunctionAlignment, SharedSegment, SplitSegment

__all__ = [
    "InstructionInterner",
    "nw_ops_encoded",
    "linear_ops_encoded",
    "ops_to_alignment",
    "BatchAlignmentEngine",
    "OP_MATCH",
    "OP_GAP_A",
    "OP_GAP_B",
]

#: Ops-array entries: consume one instruction from each side, from A only,
#: or from B only.
OP_MATCH, OP_GAP_A, OP_GAP_B = 0, 1, 2

# Below this DP area the numpy per-row overhead loses to the pure loop.
_SMALL_NW_PRODUCT = 256

# Banded-mode sentinel: far below any reachable alignment score, far above
# int64 overflow when penalties are added.
_NEG = -(1 << 40)


class InstructionInterner:
    """Dense integer codes where code equality ⇔ :func:`mergeable`.

    Keys hold the type objects themselves: the IR types have no value
    equality, so dict lookup degenerates to the ``is`` checks ``mergeable``
    performs, and the key tuples keep the types alive (an ``id`` can never
    be reused while its entry is live).  Phi and terminator instructions —
    for which ``mergeable`` is false even reflexively — get a fresh code
    per instance, so their codes never compare equal to anything.
    """

    def __init__(self) -> None:
        self._codes: Dict[tuple, int] = {}
        self._singletons: Dict[int, Tuple[Instruction, int]] = {}
        self._next = 0

    def __len__(self) -> int:
        return self._next

    @staticmethod
    def _key(inst: Instruction) -> tuple:
        pred = inst.pred if isinstance(inst, (ICmp, FCmp)) else None
        alloc = inst.allocated_type if isinstance(inst, Alloca) else None
        return (
            int(inst.opcode),
            inst.type,
            inst.num_operands,
            tuple(op.type for op in inst.operands),
            pred,
            alloc,
        )

    def code(self, inst: Instruction) -> int:
        if inst.is_phi or inst.is_terminator:
            entry = self._singletons.get(id(inst))
            if entry is not None:
                return entry[1]
            code = self._next
            self._next += 1
            self._singletons[id(inst)] = (inst, code)
            return code
        key = self._key(inst)
        code = self._codes.get(key)
        if code is None:
            code = self._next
            self._next += 1
            self._codes[key] = code
        return code

    def encode(self, instructions: Sequence[Instruction]) -> np.ndarray:
        return np.array([self.code(inst) for inst in instructions], dtype=np.int64)


# ---------------------------------------------------------------------------
# Kernels
# ---------------------------------------------------------------------------


def _nw_ops_py(
    a: List[int],
    b: List[int],
    match_score: int,
    mismatch_penalty: int,
    gap_penalty: int,
) -> List[List[int]]:
    """The pure-Python DP matrix over integer codes (reference recurrence)."""
    n, m = len(a), len(b)
    score = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        score[i][0] = score[i - 1][0] + gap_penalty
    for j in range(1, m + 1):
        score[0][j] = score[0][j - 1] + gap_penalty
    for i in range(1, n + 1):
        row = score[i]
        prev = score[i - 1]
        code_a = a[i - 1]
        for j in range(1, m + 1):
            diag = prev[j - 1] + (
                match_score if code_a == b[j - 1] else mismatch_penalty
            )
            row[j] = max(diag, prev[j] + gap_penalty, row[j - 1] + gap_penalty)
    return score


def _traceback(
    score: List[List[int]],
    a: List[int],
    b: List[int],
    match_score: int,
    mismatch_penalty: int,
    gap_penalty: int,
) -> np.ndarray:
    """Replay the pure NW traceback preference (diag, then up, then left).

    A mismatch-diagonal emits gap-A then gap-B into the reversed list, so
    the final order is gap-B before gap-A — exactly the two entries
    :func:`~repro.alignment.needleman_wunsch.needleman_wunsch` produces.
    """
    ops: List[int] = []
    i, j = len(a), len(b)
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            matched = a[i - 1] == b[j - 1]
            diag = score[i - 1][j - 1] + (
                match_score if matched else mismatch_penalty
            )
            if score[i][j] == diag:
                if matched:
                    ops.append(OP_MATCH)
                else:
                    ops.append(OP_GAP_A)
                    ops.append(OP_GAP_B)
                i -= 1
                j -= 1
                continue
        if i > 0 and score[i][j] == score[i - 1][j] + gap_penalty:
            ops.append(OP_GAP_A)
            i -= 1
        else:
            ops.append(OP_GAP_B)
            j -= 1
    ops.reverse()
    return np.array(ops, dtype=np.int8)


def nw_ops_encoded(
    codes_a: np.ndarray,
    codes_b: np.ndarray,
    match_score: int = 2,
    mismatch_penalty: int = -1,
    gap_penalty: int = -1,
    band: Optional[int] = None,
) -> np.ndarray:
    """Needleman–Wunsch decisions over two encoded streams, vectorized.

    The DP runs one numpy row at a time: with ``u[k] = candidate[k] − k·g``
    the left-gap recurrence ``row[j] = max(cand[j], row[j−1] + g)`` becomes
    a running maximum, so each row is a prefix scan instead of a Python
    loop.  Tiny problems fall back to the pure loop (same recurrence, same
    traceback — identical decisions either way).

    ``band`` restricts the DP to ``|i − j| ≤ band`` (cells outside score a
    sentinel ``−∞``), an *approximation* for near-diagonal pairs; it is
    ignored when ``|n − m| > band`` would make the end cell unreachable.
    With ``band ≥ max(n, m)`` the result is identical to the full DP.
    """
    a = np.asarray(codes_a, dtype=np.int64)
    b = np.asarray(codes_b, dtype=np.int64)
    n, m = a.shape[0], b.shape[0]
    if band is not None and abs(n - m) > band:
        band = None
    al, bl = a.tolist(), b.tolist()
    if band is None and n * m <= _SMALL_NW_PRODUCT:
        score = _nw_ops_py(al, bl, match_score, mismatch_penalty, gap_penalty)
        return _traceback(score, al, bl, match_score, mismatch_penalty, gap_penalty)

    g = gap_penalty
    jg = np.arange(m + 1, dtype=np.int64) * g
    score = np.empty((n + 1, m + 1), dtype=np.int64)
    score[0] = jg
    if band is not None and band + 1 <= m:
        score[0, band + 1 :] = _NEG
    u = np.empty(m + 1, dtype=np.int64)
    for i in range(1, n + 1):
        prev = score[i - 1]
        diag = prev[:-1] + np.where(b == a[i - 1], match_score, mismatch_penalty)
        np.maximum(diag, prev[1:] + g, out=u[1:])
        u[1:] -= jg[1:]
        u[0] = i * g if band is None or i <= band else _NEG
        row = np.maximum.accumulate(u) + jg
        if band is not None:
            row[: max(0, i - band)] = _NEG
            if i + band + 1 <= m:
                row[i + band + 1 :] = _NEG
        score[i] = row
    return _traceback(
        score.tolist(), al, bl, match_score, mismatch_penalty, gap_penalty
    )


def linear_ops_encoded(codes_a: np.ndarray, codes_b: np.ndarray) -> np.ndarray:
    """HyFM's linear strategy (shared prefix/suffix, split middle) as ops.

    Mirrors :func:`~repro.alignment.hyfm_blocks.align_blocks_linear`: the
    prefix is the longest run of equal leading codes, the suffix the
    longest run of equal trailing codes over what the prefix left.
    """
    a = np.asarray(codes_a, dtype=np.int64)
    b = np.asarray(codes_b, dtype=np.int64)
    n, m = a.shape[0], b.shape[0]
    limit = min(n, m)
    prefix = 0
    if limit:
        eq = a[:limit] == b[:limit]
        # argmin of an all-True array is 0, not "no mismatch" — guard it.
        prefix = limit if eq.all() else int(np.argmin(eq))
    rem = limit - prefix
    suffix = 0
    if rem:
        eq = a[::-1][:rem] == b[::-1][:rem]
        suffix = rem if eq.all() else int(np.argmin(eq))
    ops = np.empty(n + m - prefix - suffix, dtype=np.int8)
    ops[:prefix] = OP_MATCH
    mid_a = n - prefix - suffix
    mid_b = m - prefix - suffix
    ops[prefix : prefix + mid_a] = OP_GAP_A
    ops[prefix + mid_a : prefix + mid_a + mid_b] = OP_GAP_B
    ops[prefix + mid_a + mid_b :] = OP_MATCH
    return ops


def ops_to_alignment(
    ops: np.ndarray,
    block_a: BasicBlock,
    block_b: BasicBlock,
    seq_a: Sequence[Instruction],
    seq_b: Sequence[Instruction],
) -> BlockAlignment:
    """Rebuild the segment structure from an ops array.

    Contiguous matches become one :class:`SharedSegment`, contiguous gap
    runs one :class:`SplitSegment` — the same grouping the pure aligners'
    flush logic produces, so the resulting alignment is structurally
    identical to theirs.
    """
    alignment = BlockAlignment(block_a, block_b)
    segments = alignment.segments
    ia = ib = 0
    shared: List[Tuple[Instruction, Instruction]] = []
    left: List[Instruction] = []
    right: List[Instruction] = []
    for op in ops.tolist():
        if op == OP_MATCH:
            if left or right:
                segments.append(SplitSegment(left, right))
                left, right = [], []
            shared.append((seq_a[ia], seq_b[ib]))
            ia += 1
            ib += 1
        else:
            if shared:
                segments.append(SharedSegment(shared))
                shared = []
            if op == OP_GAP_A:
                left.append(seq_a[ia])
                ia += 1
            else:
                right.append(seq_b[ib])
                ib += 1
    if left or right:
        segments.append(SplitSegment(left, right))
    if shared:
        segments.append(SharedSegment(shared))
    return alignment


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class _BlockEntry:
    """Everything the engine knows about one basic block."""

    __slots__ = ("block", "body", "codes", "key", "counts", "magnitude")

    def __init__(
        self,
        block: BasicBlock,
        body: List[Instruction],
        codes: np.ndarray,
        key: BlockKey,
        counts: np.ndarray,
    ) -> None:
        self.block = block
        self.body = body
        self.codes = codes
        self.key = key
        self.counts = counts
        self.magnitude = int(counts.sum())


class _FunctionEntry:
    """Everything the engine knows about one function's blocks at once."""

    __slots__ = ("function", "blocks", "entries", "counts", "magnitudes", "key")

    def __init__(
        self,
        function: Function,
        blocks: List[BasicBlock],
        entries: List[_BlockEntry],
    ) -> None:
        self.function = function
        self.blocks = blocks
        self.entries = entries
        if entries:
            self.counts = np.stack([e.counts for e in entries])
            self.magnitudes = np.array(
                [e.magnitude for e in entries], dtype=np.int64
            )
        else:
            self.counts = None
            self.magnitudes = None
        # Function content key: the block keys (each already length +
        # two 32-bit FNV passes) folded through FNV again, twice (salted).
        words: List[int] = []
        for entry in entries:
            words.extend(entry.key)
        self.key = (
            len(entries),
            fnv1a_32_ints(words),
            fnv1a_32_ints([_KEY_SALT] + words),
        )


class BatchAlignmentEngine:
    """Memoized, vectorized, cache-backed drop-in for ``align_functions``.

    Produces a :class:`FunctionAlignment` with exactly the block pairing
    and segment structure of the pure path:

    * block opcode fingerprints and mergeability encodings are memoized
      per block (a function is scored against many candidates before it is
      consumed), and linearization/score matrices per function;
    * all pair similarities are computed as one integer matrix and ranked
      with the pure path's exact ``(−sim, i, j)`` order;
    * per-pair decisions come from the :class:`AlignmentCache` when the
      same block contents were aligned before (remerge rounds, sibling
      functions, partition sweeps), else from the vectorized kernels;
    * whole function-pair decisions come from the :class:`PlanCache` when
      the same pair of function contents was aligned before, skipping
      scoring, greedy pairing and per-pair DP entirely.

    Callers must invalidate functions whose blocks were mutated in place
    or replaced (:meth:`invalidate_function`); the merging pass does this
    for every function captured by a committed or rolled-back transaction.
    """

    def __init__(
        self,
        strategy: str = "linear",
        cache: Optional[AlignmentCache] = None,
        interner: Optional[InstructionInterner] = None,
        nw_band: Optional[int] = None,
        plans: Optional[PlanCache] = None,
    ) -> None:
        if strategy not in ("linear", "nw"):
            raise ValueError(f"unknown alignment strategy {strategy!r}")
        self.strategy = strategy
        self.cache = cache if cache is not None else AlignmentCache()
        self.plans = plans if plans is not None else PlanCache()
        self.interner = interner if interner is not None else InstructionInterner()
        self.nw_band = nw_band
        self._blocks: Dict[int, _BlockEntry] = {}
        self._functions: Dict[int, _FunctionEntry] = {}
        self._by_func: Dict[int, Tuple[Function, set]] = {}

    # -- memoization -----------------------------------------------------------------
    def _entry(self, block: BasicBlock) -> _BlockEntry:
        entry = self._blocks.get(id(block))
        if entry is not None:
            return entry
        body = _body(block)
        codes = self.interner.encode(body)
        counts = np.zeros(_DIM, dtype=np.int64)
        for inst in block.instructions:
            counts[_INDEX[int(inst.opcode)]] += 1
        entry = _BlockEntry(block, body, codes, block_key(codes), counts)
        self._blocks[id(block)] = entry
        func = block.parent
        if func is not None:
            owned = self._by_func.get(id(func))
            if owned is None:
                self._by_func[id(func)] = (func, {id(block)})
            else:
                owned[1].add(id(block))
        return entry

    def _fentry(self, func: Function) -> _FunctionEntry:
        fe = self._functions.get(id(func))
        if fe is not None:
            return fe
        blocks = linearize_blocks(func)
        fe = _FunctionEntry(func, blocks, [self._entry(b) for b in blocks])
        self._functions[id(func)] = fe
        owned = self._by_func.get(id(func))
        if owned is None:
            self._by_func[id(func)] = (func, set())
        return fe

    def invalidate_function(self, func: Function) -> None:
        """Drop memoized state for every block ever seen under *func*."""
        self._functions.pop(id(func), None)
        owned = self._by_func.pop(id(func), None)
        if owned is not None:
            for bid in owned[1]:
                self._blocks.pop(bid, None)

    def clear(self) -> None:
        self._blocks.clear()
        self._functions.clear()
        self._by_func.clear()

    # -- alignment -------------------------------------------------------------------
    def _strategy_tag(self, strategy: str) -> str:
        """Cache-key spelling of the strategy; a banded NW is its own
        decision space, so engines sharing a cache can never mix bands."""
        if strategy == "nw" and self.nw_band is not None:
            return f"nw@{self.nw_band}"
        return strategy

    def _pair_ops(self, entry_a: _BlockEntry, entry_b: _BlockEntry, strategy: str) -> np.ndarray:
        key = (self._strategy_tag(strategy), entry_a.key, entry_b.key)
        ops = self.cache.get(key)
        if ops is not None:
            # A 64-bit content key cannot collide silently: a wrong entry
            # would consume the wrong number of instructions.
            counts = np.bincount(ops, minlength=3)
            if (
                counts[OP_MATCH] + counts[OP_GAP_A] == entry_a.codes.shape[0]
                and counts[OP_MATCH] + counts[OP_GAP_B] == entry_b.codes.shape[0]
            ):
                return ops
        if strategy == "linear":
            ops = linear_ops_encoded(entry_a.codes, entry_b.codes)
        else:
            ops = nw_ops_encoded(entry_a.codes, entry_b.codes, band=self.nw_band)
        self.cache.put(key, ops)
        return ops

    def align_functions(
        self,
        func_a: Function,
        func_b: Function,
        strategy: Optional[str] = None,
        min_block_similarity: float = 0.0,
    ) -> FunctionAlignment:
        strategy = strategy or self.strategy
        if strategy not in ("linear", "nw"):
            raise ValueError(f"unknown alignment strategy {strategy!r}")
        fe_a = self._fentry(func_a)
        fe_b = self._fentry(func_b)
        ea, eb = fe_a.entries, fe_b.entries
        blocks_a, blocks_b = fe_a.blocks, fe_b.blocks
        na, nb = len(ea), len(eb)

        plan_key = (
            self._strategy_tag(strategy),
            min_block_similarity,
            fe_a.key,
            fe_b.key,
        )
        plan = self.plans.get(plan_key)
        if plan is not None and self._plan_valid(plan, fe_a, fe_b):
            trace.event("plan_cache", hit=True)
            return self._apply_plan(plan, fe_a, fe_b)
        trace.event("plan_cache", hit=False)
        # Block-cache telemetry is one summary event per alignment, not one
        # per lookup — a 2000-function run does ~9k lookups, and per-lookup
        # events alone would eat most of the <5% tracing budget.
        traced = trace.enabled()
        if traced:
            hits0, misses0 = self.cache.stats.hits, self.cache.stats.misses

        result = FunctionAlignment(func_a, func_b)
        if na and nb:
            dist = np.abs(fe_a.counts[:, None, :] - fe_b.counts[None, :, :]).sum(axis=2)
            total = fe_a.magnitudes[:, None] + fe_b.magnitudes[None, :]
            # int64/int64 true division matches Python's int/int exactly for
            # these magnitudes, so similarities are bit-identical to
            # OpcodeFingerprint.similarity.
            sim = np.where(total == 0, 1.0, 1.0 - dist / np.maximum(total, 1))
            idx_a, idx_b = np.nonzero(sim >= min_block_similarity)
            sims = sim[idx_a, idx_b]
            # The pure path sorts (−sim, i, j); lexsort orders by its last
            # key first.
            order = np.lexsort((idx_b, idx_a, -sims))

            used_a = [False] * na
            used_b = [False] * nb
            paired: List[Tuple[int, int, np.ndarray]] = []
            for k in order.tolist():
                i = int(idx_a[k])
                j = int(idx_b[k])
                if used_a[i] or used_b[j]:
                    continue
                # Entry blocks must pair with each other; the pure path
                # computes the alignment before this check and discards it,
                # so skipping the compute here changes nothing observable.
                if (i == 0) != (j == 0):
                    continue
                used_a[i] = used_b[j] = True
                ops = self._pair_ops(ea[i], eb[j], strategy)
                ops.flags.writeable = False
                paired.append((i, j, ops))
            paired.sort(key=lambda t: t[0])
            for i, j, ops in paired:
                result.block_pairs.append(
                    ops_to_alignment(ops, blocks_a[i], blocks_b[j], ea[i].body, eb[j].body)
                )
            result.unmatched_a = [b for b, used in zip(blocks_a, used_a) if not used]
            result.unmatched_b = [b for b, used in zip(blocks_b, used_b) if not used]
            self.plans.put(plan_key, tuple(paired))
        else:
            result.unmatched_a = list(blocks_a)
            result.unmatched_b = list(blocks_b)
            self.plans.put(plan_key, ())
        if traced:
            trace.event(
                "align_cache",
                hits=self.cache.stats.hits - hits0,
                misses=self.cache.stats.misses - misses0,
            )
        return result

    # -- plan application --------------------------------------------------------------
    @staticmethod
    def _plan_valid(
        plan: Tuple[Tuple[int, int, np.ndarray], ...],
        fe_a: _FunctionEntry,
        fe_b: _FunctionEntry,
    ) -> bool:
        """Key-collision defense: a plan must consume exactly the live
        blocks' encoded streams."""
        na, nb = len(fe_a.entries), len(fe_b.entries)
        for i, j, ops in plan:
            if i >= na or j >= nb:
                return False
            counts = np.bincount(ops, minlength=3)
            if (
                counts[OP_MATCH] + counts[OP_GAP_A] != fe_a.entries[i].codes.shape[0]
                or counts[OP_MATCH] + counts[OP_GAP_B] != fe_b.entries[j].codes.shape[0]
            ):
                return False
        return True

    @staticmethod
    def _apply_plan(
        plan: Tuple[Tuple[int, int, np.ndarray], ...],
        fe_a: _FunctionEntry,
        fe_b: _FunctionEntry,
    ) -> FunctionAlignment:
        result = FunctionAlignment(fe_a.function, fe_b.function)
        used_a = [False] * len(fe_a.blocks)
        used_b = [False] * len(fe_b.blocks)
        for i, j, ops in plan:
            used_a[i] = used_b[j] = True
            result.block_pairs.append(
                ops_to_alignment(
                    ops,
                    fe_a.blocks[i],
                    fe_b.blocks[j],
                    fe_a.entries[i].body,
                    fe_b.entries[j].body,
                )
            )
        result.unmatched_a = [b for b, used in zip(fe_a.blocks, used_a) if not used]
        result.unmatched_b = [b for b, used in zip(fe_b.blocks, used_b) if not used]
        return result
