"""Sequence/block alignment of candidate function pairs."""

from .hyfm_blocks import align_blocks_linear, align_blocks_nw, align_functions
from .model import (
    BlockAlignment,
    FunctionAlignment,
    SharedSegment,
    SplitSegment,
    mergeable,
)
from .needleman_wunsch import (
    alignment_ratio_encoded,
    matched_count_encoded,
    needleman_wunsch,
)

__all__ = [
    "align_blocks_linear",
    "align_blocks_nw",
    "align_functions",
    "BlockAlignment",
    "FunctionAlignment",
    "SharedSegment",
    "SplitSegment",
    "mergeable",
    "alignment_ratio_encoded",
    "matched_count_encoded",
    "needleman_wunsch",
]
