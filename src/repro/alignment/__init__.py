"""Sequence/block alignment of candidate function pairs."""

from .batch import (
    BatchAlignmentEngine,
    InstructionInterner,
    linear_ops_encoded,
    nw_ops_encoded,
    ops_to_alignment,
)
from .cache import AlignmentCache, AlignmentCacheStats, PlanCache, block_key
from .hyfm_blocks import (
    BlockFingerprintMemo,
    align_blocks_linear,
    align_blocks_nw,
    align_functions,
)
from .model import (
    BlockAlignment,
    FunctionAlignment,
    SharedSegment,
    SplitSegment,
    mergeable,
)
from .needleman_wunsch import (
    EncodedRatioScorer,
    alignment_ratio_encoded,
    matched_count_encoded,
    needleman_wunsch,
)

__all__ = [
    "align_blocks_linear",
    "align_blocks_nw",
    "align_functions",
    "AlignmentCache",
    "AlignmentCacheStats",
    "BatchAlignmentEngine",
    "block_key",
    "BlockAlignment",
    "BlockFingerprintMemo",
    "EncodedRatioScorer",
    "FunctionAlignment",
    "InstructionInterner",
    "linear_ops_encoded",
    "mergeable",
    "nw_ops_encoded",
    "ops_to_alignment",
    "PlanCache",
    "SharedSegment",
    "SplitSegment",
    "alignment_ratio_encoded",
    "matched_count_encoded",
    "needleman_wunsch",
]
