"""Needleman–Wunsch global alignment over instruction sequences.

SalSSA aligned whole functions with Needleman–Wunsch; HyFM replaced it with
a cheaper block-level linear strategy.  We provide NW both as an optional
block-level aligner (higher quality, quadratic cost) and as the
ground-truth *alignment ratio* oracle used to reproduce Figures 4 and 10.
"""

from __future__ import annotations

from difflib import SequenceMatcher
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")

__all__ = [
    "needleman_wunsch",
    "alignment_ratio_encoded",
    "matched_count_encoded",
    "EncodedRatioScorer",
]


def needleman_wunsch(
    seq_a: Sequence[T],
    seq_b: Sequence[T],
    match_fn: Callable[[T, T], bool],
    match_score: int = 2,
    mismatch_penalty: int = -1,
    gap_penalty: int = -1,
) -> List[Tuple[Optional[T], Optional[T]]]:
    """Globally align two sequences; returns (a, b) pairs with None gaps.

    A pair with both entries non-None is only emitted for *matching*
    elements — mismatching elements are represented as two gap entries, so
    downstream users can treat "both present" as "mergeable".
    """
    n, m = len(seq_a), len(seq_b)
    # DP score matrix, linear-space reconstruction is unnecessary at block scale.
    score = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        score[i][0] = score[i - 1][0] + gap_penalty
    for j in range(1, m + 1):
        score[0][j] = score[0][j - 1] + gap_penalty
    for i in range(1, n + 1):
        row = score[i]
        prev = score[i - 1]
        a_item = seq_a[i - 1]
        for j in range(1, m + 1):
            diag = prev[j - 1] + (
                match_score if match_fn(a_item, seq_b[j - 1]) else mismatch_penalty
            )
            row[j] = max(diag, prev[j] + gap_penalty, row[j - 1] + gap_penalty)

    # Traceback.
    out: List[Tuple[Optional[T], Optional[T]]] = []
    i, j = n, m
    while i > 0 or j > 0:
        if i > 0 and j > 0:
            matched = match_fn(seq_a[i - 1], seq_b[j - 1])
            diag = score[i - 1][j - 1] + (match_score if matched else mismatch_penalty)
            if score[i][j] == diag:
                if matched:
                    out.append((seq_a[i - 1], seq_b[j - 1]))
                else:
                    out.append((seq_a[i - 1], None))
                    out.append((None, seq_b[j - 1]))
                i -= 1
                j -= 1
                continue
        if i > 0 and score[i][j] == score[i - 1][j] + gap_penalty:
            out.append((seq_a[i - 1], None))
            i -= 1
        else:
            out.append((None, seq_b[j - 1]))
            j -= 1
    out.reverse()
    return out


def _as_sequence(encoded: Sequence[int]) -> Sequence[int]:
    """A form :class:`difflib.SequenceMatcher` accepts without copying.

    Encoded streams are already lists almost everywhere; only exotic
    callers (generators, arrays) pay for a conversion.
    """
    return encoded if isinstance(encoded, (list, tuple, str)) else list(encoded)


def matched_count_encoded(encoded_a: Sequence[int], encoded_b: Sequence[int]) -> int:
    """Number of aligned (equal) instructions between two encoded sequences.

    Uses :class:`difflib.SequenceMatcher` (a C-accelerated longest-matching
    -subsequence engine) so the all-pairs sweeps behind Figures 4 and 10
    are tractable; for equality matching its result tracks NW closely.
    """
    sm = SequenceMatcher(
        a=_as_sequence(encoded_a), b=_as_sequence(encoded_b), autojunk=False
    )
    return sum(block.size for block in sm.get_matching_blocks())


class EncodedRatioScorer:
    """Ratio-score many candidate streams against one fixed target.

    :class:`difflib.SequenceMatcher` builds its matching index from the
    second sequence; setting the target as ``b`` once and swapping only
    ``a`` per candidate amortizes that cost across a whole one-vs-many
    sweep (the all-pairs oracles, a ranker scoring one function against
    its bucket).  Note ``SequenceMatcher`` is role-asymmetric in corner
    cases: scoring candidate-vs-target can differ marginally from
    target-vs-candidate where tie-breaks between equally long matching
    blocks fall differently.
    """

    def __init__(self, target: Sequence[int]) -> None:
        self._target = _as_sequence(target)
        self._sm = SequenceMatcher(autojunk=False)
        self._sm.set_seq2(self._target)

    def matched_count(self, candidate: Sequence[int]) -> int:
        self._sm.set_seq1(_as_sequence(candidate))
        return sum(block.size for block in self._sm.get_matching_blocks())

    def ratio(self, candidate: Sequence[int]) -> float:
        candidate = _as_sequence(candidate)
        total = len(candidate) + len(self._target)
        if total == 0:
            return 1.0
        return 2.0 * self.matched_count(candidate) / total


def alignment_ratio_encoded(encoded_a: Sequence[int], encoded_b: Sequence[int]) -> float:
    """Alignment ratio 2·matched / (|A| + |B|) of two encoded sequences."""
    total = len(encoded_a) + len(encoded_b)
    if total == 0:
        return 1.0
    return 2.0 * matched_count_encoded(encoded_a, encoded_b) / total
