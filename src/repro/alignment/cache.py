"""Content-addressed cache of block-pair alignment decisions.

Merge workloads align the same block contents over and over: sibling
functions share identical blocks, remerge rounds re-align merged families,
and partition sweeps revisit the same module.  An alignment decision is a
pure function of the two blocks' *encoded* instruction streams (the
mergeability codes of :class:`~repro.alignment.batch.InstructionInterner`)
and the strategy, so it can be shared content-addressed, mirroring
:class:`~repro.fingerprint.cache.FingerprintCache`:

* per-block key = FNV-1a over the encoded stream (two salted 32-bit
  passes → a 64-bit effective key) + the stream length;
* pair key = the strategy plus both block keys;
* the cached value is the *ops array* — an ``int8`` vector of
  match / gap-A / gap-B decisions from which the segment structure is
  rebuilt against the live instruction lists;
* an in-memory LRU layer bounds resident entries (``maxsize``).

Hit/miss/eviction counters feed the merge report and the perf bench.
There is no disk layer: interner codes are assigned in first-seen order,
so keys are only stable within one interner's lifetime.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..fingerprint.fnv import fnv1a_32_ints

__all__ = [
    "AlignmentCacheStats",
    "AlignmentCache",
    "PlanCache",
    "block_key",
    "BlockKey",
    "PairKey",
]

# Second-pass key salt (same constant as the fingerprint cache): prepended
# to the stream so the two 32-bit FNV-1a hashes are independent.
_KEY_SALT = 0x9E3779B9

# (stream length, fnv1a(stream), fnv1a(salt || stream))
BlockKey = Tuple[int, int, int]
# (strategy, key of block A, key of block B)
PairKey = Tuple[str, BlockKey, BlockKey]


def block_key(codes: np.ndarray) -> BlockKey:
    """Content key of one encoded block body.

    Every code is hashed as two little-endian 32-bit words (low, high), so
    codes that differ only above bit 32 — the per-instance codes given to
    unmergeable instructions — can never collide by masking.
    """
    values = np.asarray(codes).tolist()
    n = len(values)
    # Scalar FNV: block streams are short (a handful of instructions), so
    # the plain-int loop beats the vectorized row hash by a wide margin.
    words = []
    for code in values:
        words.append(code & 0xFFFFFFFF)
        words.append((code >> 32) & 0xFFFFFFFF)
    h1 = fnv1a_32_ints(words)
    h2 = fnv1a_32_ints([_KEY_SALT] + words)
    return (n, h1, h2)


@dataclass
class AlignmentCacheStats:
    """Cache effectiveness counters (surfaced in the merge report)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class AlignmentCache:
    """LRU store of alignment ops arrays keyed by block-pair content.

    Thread-safe (one lock around the entry map).  Shared across remerge
    rounds, successive passes and partition sweeps by handing the same
    instance (or the same :class:`BatchAlignmentEngine`) to every pass.
    """

    def __init__(self, maxsize: int = 1 << 18) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.stats = AlignmentCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[PairKey, np.ndarray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: PairKey) -> Optional[np.ndarray]:
        """The cached ops array for *key*, or None on a miss.

        Returned as a copy so callers can never mutate a cached decision.
        """
        with self._lock:
            ops = self._entries.get(key)
            if ops is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return ops.copy()

    def put(self, key: PairKey, ops: np.ndarray) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = np.array(ops, dtype=np.int8, copy=True)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class PlanCache:
    """LRU store of whole-function alignment *plans*.

    A plan is the content-addressed residue of one function-pair
    alignment: a tuple of ``(block_index_a, block_index_b, ops)`` triples
    in final block order.  On a hit the engine rebuilds the
    :class:`~repro.alignment.model.FunctionAlignment` against the live
    blocks without redoing block scoring, greedy pairing or any per-pair
    DP.  Values are immutable (tuples of read-only arrays), so no
    defensive copies are needed.
    """

    def __init__(self, maxsize: int = 1 << 16) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self.stats = AlignmentCacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[tuple]:
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return plan

    def put(self, key: tuple, plan: tuple) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = plan
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
