"""Alignment data model shared by the alignment strategies and the merger.

An alignment of two basic blocks is a list of *segments*: shared segments
(pairs of mergeable instructions that will be emitted once) and split
segments (runs private to one or both functions, which the merger guards
with the function identifier).  Phi nodes and terminators are handled by the
code generator, not the aligner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.instructions import (
    Alloca,
    Call,
    FCmp,
    GetElementPtr,
    ICmp,
    Instruction,
    Invoke,
    Switch,
)

__all__ = [
    "mergeable",
    "SharedSegment",
    "SplitSegment",
    "BlockAlignment",
    "FunctionAlignment",
]


def mergeable(a: Instruction, b: Instruction) -> bool:
    """True if *a* and *b* can be emitted as a single merged instruction.

    Mirrors the equivalence the paper's encoding targets — same opcode,
    result type, operand count and operand types — plus the semantic
    details the encoding deliberately blurs (comparison predicates, callee
    signatures, switch case sets) that the alignment stage must honour.
    """
    if a.opcode != b.opcode:
        return False
    if a.type is not b.type:
        return False
    if a.num_operands != b.num_operands:
        return False
    for op_a, op_b in zip(a.operands, b.operands):
        if op_a.type is not op_b.type:
            return False
    if a.is_phi or a.is_terminator:
        return False  # handled structurally by the merger
    if isinstance(a, ICmp) and a.pred != b.pred:  # type: ignore[union-attr]
        return False
    if isinstance(a, FCmp) and a.pred != b.pred:  # type: ignore[union-attr]
        return False
    if isinstance(a, Alloca) and a.allocated_type is not b.allocated_type:  # type: ignore[union-attr]
        return False
    if isinstance(a, (Call, Invoke)):
        # Merged calls keep a single callee operand; differing callees of the
        # same signature are resolved by operand merging, so type equality
        # (checked above) suffices.
        pass
    return True


@dataclass
class SharedSegment:
    """A run of instruction pairs emitted once in the merged function."""

    pairs: List[Tuple[Instruction, Instruction]]

    @property
    def length(self) -> int:
        return len(self.pairs)


@dataclass
class SplitSegment:
    """Runs private to each function, guarded by the function id."""

    left: List[Instruction]
    right: List[Instruction]

    @property
    def length(self) -> int:
        return len(self.left) + len(self.right)


@dataclass
class BlockAlignment:
    """Alignment of one block pair, as an ordered list of segments."""

    block_a: BasicBlock
    block_b: BasicBlock
    segments: List[object] = field(default_factory=list)

    @property
    def matched(self) -> int:
        """Number of matched instruction *pairs*."""
        return sum(s.length for s in self.segments if isinstance(s, SharedSegment))

    @property
    def mismatched(self) -> int:
        return sum(s.length for s in self.segments if isinstance(s, SplitSegment))

    def profitable(self) -> bool:
        """HyFM's block-level filter: aligned blocks must share something."""
        return self.matched > 0


@dataclass
class FunctionAlignment:
    """Whole-function alignment: paired blocks plus leftovers."""

    function_a: object
    function_b: object
    block_pairs: List[BlockAlignment] = field(default_factory=list)
    unmatched_a: List[BasicBlock] = field(default_factory=list)
    unmatched_b: List[BasicBlock] = field(default_factory=list)

    @property
    def matched_instructions(self) -> int:
        return sum(p.matched for p in self.block_pairs)

    @property
    def total_instructions(self) -> int:
        total = 0
        for pair in self.block_pairs:
            total += len(pair.block_a.instructions) + len(pair.block_b.instructions)
        for block in self.unmatched_a:
            total += len(block.instructions)
        for block in self.unmatched_b:
            total += len(block.instructions)
        return total

    @property
    def alignment_ratio(self) -> float:
        """Fraction of instructions participating in a match (Figs. 4/10)."""
        total = self.total_instructions
        return (2.0 * self.matched_instructions / total) if total else 0.0
